package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/imin-dev/imin/internal/faultfs"
	"github.com/imin-dev/imin/internal/store"
)

func getStats(t *testing.T, url string) StatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestDegradedModeAndSelfHeal is the end-to-end degraded cycle: an injected
// WAL fsync failure turns a mutate into a 503 + Retry-After and flips the
// graph into degraded read-only mode — solves keep working, /readyz goes
// 503 — then, once the "device" recovers, the self-heal checkpoint restores
// writability without a restart and the full epoch history survives a real
// restart.
func TestDegradedModeAndSelfHeal(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(nil)
	st, err := store.Open(dir, store.Config{Fsync: store.FsyncAlways, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Config{
		Store:       st,
		HealBackoff: time.Millisecond,
	})

	reg := RegisterGraphRequest{Name: "g", Generator: "erdos-renyi", N: 120, M: 500, Directed: true, Seed: 5}
	if code, body := postJSON(t, ts.URL+"/graphs", reg, nil); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}
	entry, _ := srv.Registry().Get("g")
	g0, _ := entry.Current()
	mutLine := func(i int) string {
		e := g0.Edges()[i*7]
		return fmt.Sprintf("{\"op\":\"set-prob\",\"u\":%d,\"v\":%d,\"p\":0.42}\n", e.From, e.To)
	}
	if code, body := postNDJSON(t, ts.URL+"/graphs/g/mutate", mutLine(0), nil); code != http.StatusOK {
		t.Fatalf("healthy mutate: %d %s", code, body)
	}

	// The device starts failing every fsync — WAL appends and checkpoint
	// snapshots alike, so the self-heal loop cannot succeed (and end the
	// degraded window under the test's feet) until the rules clear. The
	// next mutate commits in memory, fails to persist, and must degrade
	// the graph.
	inj.SetRules(faultfs.Rule{Op: faultfs.OpSync})
	resp, err := http.Post(ts.URL+"/graphs/g/mutate", "application/x-ndjson", strings.NewReader(mutLine(1)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mutate during fsync failure: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degrading 503 without a Retry-After header")
	}

	// Degraded and read-only: further mutates bounce with 503 before any
	// in-memory commit...
	resp, err = http.Post(ts.URL+"/graphs/g/mutate", "application/x-ndjson", strings.NewReader(mutLine(2)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("mutate while degraded: %d (Retry-After %q), want 503 with Retry-After",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	// ...while solves keep serving from the in-memory epoch.
	solveReq := SolveRequest{Seeds: []int{2, 5}, Budget: 2, Theta: 200, Seed: 9, EvalRounds: -1}
	if code, body := postJSON(t, ts.URL+"/graphs/g/solve", solveReq, nil); code != http.StatusOK {
		t.Fatalf("solve while degraded: %d %s", code, body)
	}
	// The listing and the probes surface the state.
	var infos []GraphInfo
	if code, body := getJSONBody(t, ts.URL+"/graphs", &infos); code != http.StatusOK {
		t.Fatalf("list: %d %s", code, body)
	}
	if len(infos) != 1 || !infos[0].Degraded || infos[0].DegradedReason == "" {
		t.Fatalf("listing while degraded: %+v", infos)
	}
	if code := probeCode(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while degraded: %d, want 503", code)
	}
	if code := probeCode(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz while degraded: %d, want 200 (the process is alive)", code)
	}
	stats := getStats(t, ts.URL)
	if stats.Persist == nil || stats.Persist.DegradedEnters != 1 || len(stats.Persist.DegradedGraphs) != 1 {
		t.Fatalf("persist stats while degraded: %+v", stats.Persist)
	}

	// The device recovers; the self-heal loop's checkpoint must restore
	// writability (a fresh snapshot + WAL generation supersede the
	// poisoned log) without a restart.
	inj.ClearRules()
	deadline := time.Now().Add(5 * time.Second)
	for probeCode(t, ts.URL+"/readyz") != http.StatusOK {
		if time.Now().After(deadline) {
			t.Fatal("graph did not self-heal within 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, body := postNDJSON(t, ts.URL+"/graphs/g/mutate", mutLine(3), nil); code != http.StatusOK {
		t.Fatalf("mutate after self-heal: %d %s", code, body)
	}
	stats = getStats(t, ts.URL)
	if stats.Persist.SelfHeals != 1 || len(stats.Persist.DegradedGraphs) != 0 {
		t.Fatalf("persist stats after heal: %+v", stats.Persist)
	}

	// Restart over the same directory: epoch 3 = healthy mutate + the
	// failed-but-committed mutate (carried by the heal checkpoint) + the
	// post-heal mutate.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(dir, store.Config{Fsync: store.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(Config{Store: st2})
	defer srv2.Close()
	if _, err := srv2.Recover(); err != nil {
		t.Fatal(err)
	}
	entry2, ok := srv2.Registry().Get("g")
	if !ok {
		t.Fatal("graph lost across restart")
	}
	if _, epoch := entry2.Current(); epoch != 3 {
		t.Fatalf("recovered epoch %d, want 3", epoch)
	}
}

func probeCode(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func getJSONBody(t *testing.T, url string, out any) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		raw.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal([]byte(raw.String()), out); err != nil {
			t.Fatalf("decode %s: %v (body %s)", url, err, raw.String())
		}
	}
	return resp.StatusCode, raw.String()
}

// TestLoadSheddingSheds429 saturates the solve pool (the test holds the
// single slot) so an incoming solve exhausts MaxQueueWait in the admission
// queue: it must be shed with 429 + Retry-After and counted in /stats, and
// service must resume once the slot frees up.
func TestLoadSheddingSheds429(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueueWait: 30 * time.Millisecond})
	reg := RegisterGraphRequest{Name: "g", Generator: "erdos-renyi", N: 100, M: 400, Directed: true, Seed: 3}
	if code, body := postJSON(t, ts.URL+"/graphs", reg, nil); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}

	srv.sem <- struct{}{} // occupy the only solve slot
	solveReq := SolveRequest{Seeds: []int{1, 2}, Budget: 2, Theta: 100, Seed: 7, EvalRounds: -1}
	buf, _ := json.Marshal(solveReq)
	resp, err := http.Post(ts.URL+"/graphs/g/solve", "application/json", strings.NewReader(string(buf)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queued solve with the pool full: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed 429 without a Retry-After header")
	}
	if stats := getStats(t, ts.URL); stats.Sheds != 1 {
		t.Fatalf("sheds = %d, want 1", stats.Sheds)
	}

	<-srv.sem // the slot frees; service resumes
	if code, body := postJSON(t, ts.URL+"/graphs/g/solve", solveReq, nil); code != http.StatusOK {
		t.Fatalf("solve after the slot freed: %d %s", code, body)
	}
}

// TestPanicRecoveryMiddleware injects a panicking route behind the real
// middleware chain: the client gets a 500, the panic is counted, and the
// server keeps serving.
func TestPanicRecoveryMiddleware(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	srv.mux.HandleFunc("GET /boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	if code := probeCode(t, ts.URL+"/boom"); code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: %d, want 500", code)
	}
	if code := probeCode(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz after a panic: %d", code)
	}
	if stats := getStats(t, ts.URL); stats.Panics != 1 {
		t.Fatalf("panics = %d, want 1", stats.Panics)
	}

	// The 500 body names the failed route and carries the request id, so a
	// client error report can be joined against the server's panic log line.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/boom", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "panic-corr-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var eresp ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&eresp); err != nil {
		t.Fatalf("500 body is not JSON: %v", err)
	}
	if eresp.RequestID != "panic-corr-7" {
		t.Errorf("500 body request_id = %q, want panic-corr-7", eresp.RequestID)
	}
	if !strings.Contains(eresp.Error, "GET /boom") {
		t.Errorf("500 body error %q does not name the failed route", eresp.Error)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "panic-corr-7" {
		t.Errorf("500 X-Request-Id header = %q", got)
	}
}

// TestReadyzWithoutStore: a store-less server is trivially ready.
func TestReadyzWithoutStore(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code := probeCode(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", code)
	}
}
