package core

import "unsafe"

// cacheLine is the false-sharing granularity the shard layout pads against.
// 64 bytes covers x86-64 and most arm64 parts; on 128-byte-line hardware the
// padding is half-effective but never incorrect.
const cacheLine = 64

// alignedInt64 returns a zeroed []int64 of length n whose backing array
// starts on a cache-line boundary. Per-shard accumulators are the hottest
// write target of the parallel phase; when the runtime lays two shards'
// arrays end to end, the last line of one and the first line of the next
// ping-pong between cores on every round. Alignment (plus the slice's
// exclusive capacity) keeps each shard's lines private.
func alignedInt64(n int) []int64 {
	const pad = cacheLine / 8
	raw := make([]int64, n+pad)
	off := 0
	for uintptr(unsafe.Pointer(&raw[off]))%cacheLine != 0 {
		off++
	}
	return raw[off : off+n : off+n]
}

// alignedBools is alignedInt64 for the per-shard touched-stamp (mark)
// arrays, which the reduction phase writes from range-partitioned reducers.
func alignedBools(n int) []bool {
	raw := make([]bool, n+cacheLine)
	off := 0
	for uintptr(unsafe.Pointer(&raw[off]))%cacheLine != 0 {
		off++
	}
	return raw[off : off+n : off+n]
}
