package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV export of every experiment's rows, for plotting the figures outside
// Go (the paper's figures are log-scale plots of exactly these series).

// WriteTable3CSV writes Table III rows.
func WriteTable3CSV(w io.Writer, rows []Table3Row) error {
	return writeCSV(w, []string{"algorithm", "budget", "blockers", "spread"}, len(rows), func(i int) []string {
		r := rows[i]
		return []string{r.Algorithm, strconv.Itoa(r.Budget), vertexNames(r.Blockers), formatF(r.Spread)}
	})
}

// WriteTable56CSV writes Table V/VI rows.
func WriteTable56CSV(w io.Writer, rows []Table56Row) error {
	return writeCSV(w, []string{"budget", "exact_spread", "gr_spread", "ratio", "exact_seconds", "gr_seconds"}, len(rows), func(i int) []string {
		r := rows[i]
		return []string{
			strconv.Itoa(r.Budget), formatF(r.ExactSpread), formatF(r.GRSpread),
			formatF(r.Ratio), formatF(r.ExactRuntime.Seconds()), formatF(r.GRRuntime.Seconds()),
		}
	})
}

// WriteTable7CSV writes Table VII rows.
func WriteTable7CSV(w io.Writer, rows []Table7Row) error {
	return writeCSV(w, []string{"dataset", "model", "budget", "ra", "od", "ag", "gr"}, len(rows), func(i int) []string {
		r := rows[i]
		return []string{
			r.Dataset, r.Model.String(), strconv.Itoa(r.Budget),
			formatF(r.RA), formatF(r.OD), formatF(r.AG), formatF(r.GR),
		}
	})
}

// WriteFig56CSV writes the Figure 5/6 series.
func WriteFig56CSV(w io.Writer, pts []Fig56Point) error {
	return writeCSV(w, []string{"dataset", "theta", "spread", "decrease_pct", "seconds"}, len(pts), func(i int) []string {
		p := pts[i]
		return []string{
			p.Dataset, strconv.Itoa(p.Theta), formatF(p.Spread),
			formatF(p.DecreaseRatioPct), formatF(p.Runtime.Seconds()),
		}
	})
}

// WriteFig78CSV writes the Figure 7/8 bars.
func WriteFig78CSV(w io.Writer, rows []Fig78Row) error {
	return writeCSV(w, []string{"dataset", "model", "bg_seconds", "bg_timeout", "ag_seconds", "gr_seconds"}, len(rows), func(i int) []string {
		r := rows[i]
		return []string{
			r.Dataset, r.Model.String(), formatF(r.BG.Seconds()),
			strconv.FormatBool(r.BGTimedOut), formatF(r.AG.Seconds()), formatF(r.GR.Seconds()),
		}
	})
}

// WriteFig9CSV writes the Figure 9 series.
func WriteFig9CSV(w io.Writer, pts []Fig9Point) error {
	return writeCSV(w, []string{"dataset", "model", "budget", "bg_seconds", "ag_seconds", "gr_seconds"}, len(pts), func(i int) []string {
		p := pts[i]
		bg := ""
		if !p.BGSkipped {
			bg = formatF(p.BG.Seconds())
		}
		return []string{
			p.Dataset, p.Model.String(), strconv.Itoa(p.Budget),
			bg, formatF(p.AG.Seconds()), formatF(p.GR.Seconds()),
		}
	})
}

// WriteFig1011CSV writes the Figure 10/11 series.
func WriteFig1011CSV(w io.Writer, pts []Fig1011Point) error {
	return writeCSV(w, []string{"dataset", "model", "seeds", "seconds"}, len(pts), func(i int) []string {
		p := pts[i]
		return []string{p.Dataset, p.Model.String(), strconv.Itoa(p.NumSeeds), formatF(p.Runtime.Seconds())}
	})
}

func writeCSV(w io.Writer, header []string, n int, row func(i int) []string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := cw.Write(row(i)); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("harness: writing csv: %w", err)
	}
	return nil
}

func formatF(f float64) string { return strconv.FormatFloat(f, 'g', 8, 64) }
