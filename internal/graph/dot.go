package graph

import (
	"bufio"
	"fmt"
	"io"
)

// DOTOptions controls Graphviz export.
type DOTOptions struct {
	// Name is the digraph name; default "G".
	Name string
	// Highlight assigns a fill color per vertex (e.g. seeds red, blockers
	// gray); vertices absent from the map are drawn plainly.
	Highlight map[V]string
	// Label assigns custom vertex labels; default is the numeric id.
	Label map[V]string
	// ShowProbabilities annotates edges with their propagation
	// probability.
	ShowProbabilities bool
	// MaxEdges truncates the output for very large graphs (0 = no limit);
	// a comment records the truncation.
	MaxEdges int
}

// WriteDOT renders the graph in Graphviz DOT format, the standard way to
// eyeball small instances (dot -Tsvg). The toy-graph example uses it to
// draw Figure 1 with seeds and blockers highlighted.
func (g *Graph) WriteDOT(w io.Writer, opts DOTOptions) error {
	if opts.Name == "" {
		opts.Name = "G"
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %s {\n  rankdir=LR;\n  node [shape=circle];\n", opts.Name)
	for v := V(0); int(v) < g.n; v++ {
		label, ok := opts.Label[v]
		if !ok {
			label = fmt.Sprintf("%d", v)
		}
		if color, ok := opts.Highlight[v]; ok {
			fmt.Fprintf(bw, "  %d [label=%q, style=filled, fillcolor=%q];\n", v, label, color)
		} else {
			fmt.Fprintf(bw, "  %d [label=%q];\n", v, label)
		}
	}
	written := 0
	for u := V(0); int(u) < g.n; u++ {
		to := g.OutNeighbors(u)
		ps := g.OutProbs(u)
		for i, v := range to {
			if opts.MaxEdges > 0 && written >= opts.MaxEdges {
				fmt.Fprintf(bw, "  // ... %d more edges truncated\n", g.M()-written)
				goto done
			}
			if opts.ShowProbabilities {
				fmt.Fprintf(bw, "  %d -> %d [label=\"%g\"];\n", u, v, ps[i])
			} else {
				fmt.Fprintf(bw, "  %d -> %d;\n", u, v)
			}
			written++
		}
	}
done:
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
