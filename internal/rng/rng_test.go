package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestReseedMatchesNew(t *testing.T) {
	a := New(7)
	a.Uint64()
	a.Reseed(99)
	b := New(99)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Reseed state differs from New at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs of 100", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestBernoulliBoundaries(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(6)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		const n = 100000
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bernoulli(%v) frequency %v", p, got)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(8)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(9).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(10)
	const n, trials = 10, 200000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("Intn(%d): value %d seen %d times, want about %.0f", n, v, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) is not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(12)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	c1b := New(12).Split(1)
	same12 := 0
	for i := 0; i < 100; i++ {
		v1, v2 := c1.Uint64(), c2.Uint64()
		if v1 == v2 {
			same12++
		}
		if v1 != c1b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
	if same12 > 0 {
		t.Fatalf("sibling streams matched %d/100 outputs", same12)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v, want about 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance %v, want about 1", variance)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkBernoulli(b *testing.B) {
	r := New(1)
	n := 0
	for i := 0; i < b.N; i++ {
		if r.Bernoulli(0.1) {
			n++
		}
	}
	_ = n
}
