package core

import (
	"sync"

	"github.com/imin-dev/imin/internal/cascade"
	"github.com/imin-dev/imin/internal/graph"
)

// RepairSetLT widens a mutation batch's changed-sources set into the dirty
// criterion Repair needs under the LT diffusion model. An LT replay draws
// each inspected vertex v's trigger choice from v's in-row, and v is
// inspected whenever any in-neighbor of v (in the pre-mutation graph old)
// is reached — whether or not v itself ends up in the sample. A sample
// containing no changed source and no old in-neighbor of a changed target
// therefore iterates identical out-rows and draws identical triggers, so
// the returned set — sources ∪ old-graph in-neighbors of every vertex whose
// in-row changed — is a sound criterion. (In-neighbors added by this very
// batch have changed out-rows, so they are already sources.)
func RepairSetLT(old *graph.Graph, changedSources, changedTargets []graph.V) []graph.V {
	seen := make(map[graph.V]struct{}, len(changedSources))
	out := make([]graph.V, 0, len(changedSources))
	add := func(v graph.V) {
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	for _, v := range changedSources {
		add(v)
	}
	for _, v := range changedTargets {
		if v < 0 || int(v) >= old.N() {
			continue // a brand-new vertex is inspected only via new sources
		}
		for _, u := range old.InNeighbors(v) {
			add(u)
		}
	}
	return out
}

// Repair rebuilds the pool against a mutated graph without redrawing every
// sample. sampler must be a live sampler over the new graph (same diffusion
// model and source vertex-id space as the pool's; vertex ids stable, vertex
// count may only have grown); changed is the dirty criterion: a vertex set
// such that any sample whose rng replay could diverge on the new graph
// contains at least one of its members. For IC samples that set is exactly
// the vertices whose out-adjacency changed (coins are flipped only at
// reached vertices' out-rows); LT trigger draws additionally read the
// in-rows of inspected-but-not-necessarily-reached vertices, so LT callers
// must widen the set with RepairSetLT.
//
// The repaired pool is bit-identical to NewSamplePool over the new graph
// with the pool's original rng base: sample i is the deterministic replay of
// stream base.Split(i) against the graph, and by the criterion above that
// replay only diverges if the sample contains a changed vertex. Those
// samples — found through the inverted index — are redrawn from their
// original streams; every other sample's coin sequence is untouched, so its
// bytes are copied straight from the old arena. Cost: O(dirty samples · m̄ /
// workers) for the redraw plus one O(arena) copy pass, against O(θ · m̄ /
// workers) for a full rebuild.
//
// The second return value lists the redrawn sample ids, ascending — the
// exact set a pool-backed incremental estimator must mark dirty
// (IncrementalPooledEstimator.RepairPool) to stay consistent. p itself is
// immutable and remains valid. workers <= 0 selects GOMAXPROCS.
func (p *SamplePool) Repair(sampler cascade.LiveSampler, changed []graph.V, workers int) (*SamplePool, []int32) {
	theta := p.Theta()
	oldN := p.g.N()
	newG := sampler.Graph()

	mark := make([]bool, theta)
	nDirty := 0
	for _, v := range changed {
		if v < 0 || int(v) >= oldN {
			continue // vertices added after the draw appear in no stored sample
		}
		p.samplesContaining(v, func(i int32) {
			if !mark[i] {
				mark[i] = true
				nDirty++
			}
		})
	}
	dirty := make([]int32, 0, nDirty)
	for i := 0; i < theta; i++ {
		if mark[i] {
			dirty = append(dirty, int32(i))
		}
	}

	if nDirty == 0 {
		// Every sample replays identically: share the (immutable) arena and
		// rebind the graph. The index is per-vertex and must cover new ids.
		if p.enc == PoolCompressed {
			q := &SamplePool{
				g: newG, src: p.src, base: p.base, enc: PoolCompressed,
				vertStart: p.vertStart, edgeStart: p.edgeStart,
				vertStart32: p.vertStart32, edgeStart32: p.edgeStart32,
				vertOrig: p.vertOrig, csrStart: p.csrStart, edgeTo: p.edgeTo,
				encIdx: p.encIdx, encIdxOff: p.encIdxOff, encIdxOff32: p.encIdxOff32,
			}
			if n := newG.N(); n > oldN {
				// Vertices added after the draw appear in no sample: their
				// index runs are empty, so the offset array (whichever
				// width survived narrowing) just repeats its final value.
				if p.encIdxOff32 != nil {
					off := make([]int32, n+1)
					copy(off, p.encIdxOff32)
					for v := oldN + 1; v <= n; v++ {
						off[v] = off[oldN]
					}
					q.encIdxOff32 = off
				} else {
					off := make([]int64, n+1)
					copy(off, p.encIdxOff)
					for v := oldN + 1; v <= n; v++ {
						off[v] = off[oldN]
					}
					q.encIdxOff = off
				}
			}
			return q, dirty
		}
		q := &SamplePool{
			g: newG, src: p.src, base: p.base,
			vertStart: p.vertStart, edgeStart: p.edgeStart,
			vertOrig: p.vertOrig, csrStart: p.csrStart, edgeTo: p.edgeTo,
			csrInStart: p.csrInStart, inFrom: p.inFrom,
		}
		if newG.N() == oldN {
			q.idxStart, q.idxSample = p.idxStart, p.idxSample
		} else {
			q.buildIndex(poolWorkers(workers, theta))
		}
		return q, dirty
	}

	if p.enc == PoolCompressed {
		// Redrawing needs byte-level splicing of clean samples, which the
		// flat layout gives for free; round-tripping through it keeps one
		// proven repair path for both encodings. The repaired flat twin is
		// bit-identical to repairing a never-compressed pool (the encoding
		// is lossless), so re-encoding it preserves every cross-encoding
		// identity at O(arena) cost — cheap next to the dirty redraws that
		// brought us here.
		w := poolWorkers(workers, theta)
		q := p.decompress(w).repairDirty(sampler, newG, mark, dirty, workers)
		q.compress(w)
		return q, dirty
	}
	return p.repairDirty(sampler, newG, mark, dirty, workers), dirty
}

// repairDirty is the flat-layout redraw: dirty samples are re-sampled from
// their original streams, everything else is byte-copied into a fresh
// arena.
func (p *SamplePool) repairDirty(sampler cascade.LiveSampler, newG *graph.Graph, mark []bool, dirty []int32, workers int) *SamplePool {
	theta := p.Theta()
	nDirty := len(dirty)

	// Phase 1: redraw the dirty samples in parallel, each from its original
	// per-sample stream against the new graph, through the same drawShard
	// append body NewSamplePool uses — so the bytes match a from-scratch
	// draw by construction.
	w := poolWorkers(workers, nDirty)
	shards := make([]drawShard, w)
	var wg sync.WaitGroup
	for s := 0; s < w; s++ {
		lo, hi := s*nDirty/w, (s+1)*nDirty/w
		wg.Add(1)
		go func(sh *drawShard, lo, hi int) {
			defer wg.Done()
			ws := sampler.NewWorkspace()
			for j := lo; j < hi; j++ {
				sh.appendSample(sampler.Sample(p.src, nil, p.base.Split(uint64(dirty[j])), ws))
			}
		}(&shards[s], lo, hi)
	}
	wg.Wait()

	// Where each dirty sample's data sits inside its shard's buffers.
	type loc struct {
		sh         *drawShard
		vs, es, ci int64 // vertex, edge, and csr offsets into the shard
		k, e       int32
	}
	locs := make([]loc, nDirty)
	pos := 0
	for s := range shards {
		sh := &shards[s]
		var vs, es, ci int64
		for j := range sh.ks {
			locs[pos] = loc{sh: sh, vs: vs, es: es, ci: ci, k: sh.ks[j], e: sh.es[j]}
			vs += int64(sh.ks[j])
			es += int64(sh.es[j])
			ci += int64(sh.ks[j]) + 1
			pos++
		}
	}
	posOf := make([]int32, theta) // sample id → dirty position, valid when mark[i]
	for di, i := range dirty {
		posOf[i] = int32(di)
	}

	// Phase 2: new arena offsets — dirty samples change size, so the whole
	// prefix structure is recomputed.
	q := &SamplePool{
		g: newG, src: p.src, base: p.base,
		vertStart: make([]int64, theta+1), edgeStart: make([]int64, theta+1),
	}
	var tv, te int64
	for i := 0; i < theta; i++ {
		q.vertStart[i], q.edgeStart[i] = tv, te
		if mark[i] {
			l := &locs[posOf[i]]
			tv += int64(l.k)
			te += int64(l.e)
		} else {
			tv += p.vertStart[i+1] - p.vertStart[i]
			te += p.edgeStart[i+1] - p.edgeStart[i]
		}
	}
	q.vertStart[theta], q.edgeStart[theta] = tv, te
	q.vertOrig = make([]graph.V, tv)
	q.csrStart = make([]int32, tv+int64(theta))
	q.edgeTo = make([]int32, te)
	q.csrInStart = make([]int32, tv+int64(theta))
	q.inFrom = make([]int32, te)

	// Phase 3: parallel copy — clean samples from the old arena, dirty ones
	// from the shard buffers. Per-sample content is fixed, so the result
	// does not depend on the partition.
	cw := poolWorkers(workers, theta)
	for s := 0; s < cw; s++ {
		lo, hi := s*theta/cw, (s+1)*theta/cw
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				vs, k := q.vertStart[i], q.vertStart[i+1]-q.vertStart[i]
				es, e := q.edgeStart[i], q.edgeStart[i+1]-q.edgeStart[i]
				cs := vs + int64(i)
				if mark[i] {
					l := &locs[posOf[i]]
					copy(q.vertOrig[vs:vs+k], l.sh.orig[l.vs:l.vs+int64(l.k)])
					copy(q.csrStart[cs:cs+k+1], l.sh.csr[l.ci:l.ci+int64(l.k)+1])
					copy(q.edgeTo[es:es+e], l.sh.to[l.es:l.es+int64(l.e)])
					copy(q.csrInStart[cs:cs+k+1], l.sh.inCSR[l.ci:l.ci+int64(l.k)+1])
					copy(q.inFrom[es:es+e], l.sh.from[l.es:l.es+int64(l.e)])
				} else {
					ovs, oes := p.vertStart[i], p.edgeStart[i]
					ocs := ovs + int64(i)
					copy(q.vertOrig[vs:vs+k], p.vertOrig[ovs:ovs+k])
					copy(q.csrStart[cs:cs+k+1], p.csrStart[ocs:ocs+k+1])
					copy(q.edgeTo[es:es+e], p.edgeTo[oes:oes+e])
					copy(q.csrInStart[cs:cs+k+1], p.csrInStart[ocs:ocs+k+1])
					copy(q.inFrom[es:es+e], p.inFrom[oes:oes+e])
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	q.buildIndex(cw)
	return q
}
