// Package obs is imind's observability toolkit: a dependency-free metrics
// registry with Prometheus text exposition, and a nil-safe span tracer with
// a bounded in-memory ring.
//
// The registry holds counters, gauges and histograms — plain and labeled —
// plus function-backed variants that sample another subsystem's counters at
// scrape time. Everything is safe for concurrent use; the hot-path write
// operations (Counter.Add, Gauge.Set, Histogram.Observe) are a handful of
// atomic operations and never allocate or take the registry lock.
//
// The serving layer's /stats JSON and /metrics exposition both read from
// the same instruments, so the two views cannot drift.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metricName and labelName are the Prometheus data-model legality rules.
var (
	metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelName  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// atomicFloat is a float64 updated with CAS on its bit pattern, so counter
// and gauge writes never take a lock.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) set(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing metric.
type Counter struct{ v atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.v.add(1) }

// Add increases the counter by v; negative deltas are programmer error and
// are dropped rather than corrupting the monotonic contract.
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	c.v.add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.load() }

// Int returns the current count truncated to int64, for JSON stats views.
func (c *Counter) Int() int64 { return int64(c.v.load()) }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v.set(v) }

// Add shifts the gauge by v (negative allowed).
func (g *Gauge) Add(v float64) { g.v.add(v) }

// Inc and Dec shift the gauge by ±1.
func (g *Gauge) Inc() { g.v.add(1) }
func (g *Gauge) Dec() { g.v.add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return g.v.load() }

// Int returns the current value truncated to int64.
func (g *Gauge) Int() int64 { return int64(g.v.load()) }

// Histogram counts observations into cumulative buckets, Prometheus-style.
type Histogram struct {
	bounds []float64 // sorted ascending, exclusive of +Inf
	counts []atomic.Int64
	inf    atomic.Int64
	sum    atomicFloat
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			h.sum.add(v)
			return
		}
	}
	h.inf.Add(1)
	h.sum.add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	n := h.inf.Load()
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// DefTimeBuckets are the default latency buckets, in seconds: 100µs to
// ~100s in roughly 3x steps — wide enough for WAL fsyncs and cold
// million-vertex solves on one scale.
var DefTimeBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// family is one exposition family: a name, type, help text, and either a
// fixed set of instruments keyed by label values or a sample function.
type family struct {
	name   string
	help   string
	typ    metricType
	labels []string

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	bounds   []float64

	// fn samples a function-backed family at scrape time; fnLabels carries
	// the pre-rendered label block ("" for unlabeled).
	fn       func() float64
	fnLabels string
}

// Registry is a set of metric families. Create with NewRegistry; register
// every instrument once at startup and share the handles.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register adds a family, panicking on an illegal or duplicate name —
// registration happens once at startup, so both are programmer errors
// better caught loudly than silently aliased.
func (r *Registry) register(name, help string, typ metricType, labels []string) *family {
	if !metricName.MatchString(name) {
		panic(fmt.Sprintf("obs: illegal metric name %q", name))
	}
	for _, l := range labels {
		if !labelName.MatchString(l) || strings.HasPrefix(l, "__") {
			panic(fmt.Sprintf("obs: illegal label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[name]; ok {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	f := &family{name: name, help: help, typ: typ, labels: labels}
	r.families[name] = f
	r.order = append(r.order, f)
	return f
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, typeCounter, nil)
	c := &Counter{}
	f.counters = map[string]*Counter{"": c}
	return c
}

// CounterFunc registers a counter whose value is sampled from fn at scrape
// time — the bridge for subsystems that already keep their own counters.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, typeCounter, nil)
	f.fn = fn
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, typeGauge, nil)
	g := &Gauge{}
	f.gauges = map[string]*Gauge{"": g}
	return g
}

// GaugeFunc registers a gauge sampled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, typeGauge, nil)
	f.fn = fn
}

// Histogram registers and returns an unlabeled histogram over the given
// bucket upper bounds (sorted ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.register(name, help, typeHistogram, nil)
	f.bounds = checkBounds(name, bounds)
	h := newHistogram(f.bounds)
	f.hists = map[string]*Histogram{"": h}
	return h
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := r.register(name, help, typeCounter, mustLabels(name, labels))
	f.counters = make(map[string]*Counter)
	return &CounterVec{f: f}
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	f := r.register(name, help, typeGauge, mustLabels(name, labels))
	f.gauges = make(map[string]*Gauge)
	return &GaugeVec{f: f}
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	f := r.register(name, help, typeHistogram, mustLabels(name, labels))
	f.bounds = checkBounds(name, bounds)
	f.hists = make(map[string]*Histogram)
	return &HistogramVec{f: f}
}

func mustLabels(name string, labels []string) []string {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: vec metric %q needs at least one label", name))
	}
	return labels
}

func checkBounds(name string, bounds []float64) []float64 {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs buckets", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
		}
	}
	return bounds
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds))}
}

// CounterVec is a labeled counter family; resolve children with With.
type CounterVec struct{ f *family }

// With returns the child for the given label values (one per registered
// label, in order), creating it on first use. Children are cached; hot
// paths should resolve once and keep the handle.
func (v *CounterVec) With(values ...string) *Counter {
	key := v.f.childKey(values)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	c, ok := v.f.counters[key]
	if !ok {
		c = &Counter{}
		v.f.counters[key] = c
	}
	return c
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the child gauge for the label values, creating it on first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	key := v.f.childKey(values)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	g, ok := v.f.gauges[key]
	if !ok {
		g = &Gauge{}
		v.f.gauges[key] = g
	}
	return g
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the child histogram for the label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := v.f.childKey(values)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	h, ok := v.f.hists[key]
	if !ok {
		h = newHistogram(v.f.bounds)
		v.f.hists[key] = h
	}
	return h
}

// childKey renders the label block for a child ({a="x",b="y"}), which
// doubles as the cache key. Panics on arity mismatch — a vec resolved with
// the wrong number of values is a programmer error.
func (f *family) childKey(values []string) string {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range f.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the exposition-format label escaping rules.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4). Families appear in registration order, children
// sorted by label block, so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.order...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	if f.fn != nil {
		writeSample(b, f.name, f.fnLabels, f.fn())
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	switch f.typ {
	case typeCounter:
		for _, key := range sortedKeys(f.counters) {
			writeSample(b, f.name, key, f.counters[key].Value())
		}
	case typeGauge:
		for _, key := range sortedKeys(f.gauges) {
			writeSample(b, f.name, key, f.gauges[key].Value())
		}
	case typeHistogram:
		for _, key := range sortedKeys(f.hists) {
			h := f.hists[key]
			cum := int64(0)
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				writeSample(b, f.name+"_bucket", mergeLE(key, formatBound(bound)), float64(cum))
			}
			cum += h.inf.Load()
			writeSample(b, f.name+"_bucket", mergeLE(key, "+Inf"), float64(cum))
			writeSample(b, f.name+"_sum", key, h.Sum())
			writeSample(b, f.name+"_count", key, float64(cum))
		}
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// mergeLE splices the le label into an existing label block.
func mergeLE(key, bound string) string {
	le := `le="` + bound + `"`
	if key == "" {
		return "{" + le + "}"
	}
	return key[:len(key)-1] + "," + le + "}"
}

func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

func writeSample(b *strings.Builder, name, labels string, v float64) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	switch {
	case math.IsInf(v, 1):
		b.WriteString("+Inf")
	case math.IsInf(v, -1):
		b.WriteString("-Inf")
	case math.IsNaN(v):
		b.WriteString("NaN")
	default:
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	b.WriteByte('\n')
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// Handler returns an http.Handler serving the exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w) // status line already out; nothing to do on error
	})
}
