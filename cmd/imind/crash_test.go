package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/imin-dev/imin/internal/datasets"
	"github.com/imin-dev/imin/internal/dynamic"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
	"github.com/imin-dev/imin/internal/store"
)

// crashGraph mirrors the registration the crash test sends over HTTP, so
// the test can rebuild the exact same graph in-process for its control.
// Must stay in lockstep with the server's buildGraph: erdos-renyi uses
// rng.New(seed), TR assignment rng.New(seed^0x7112).
const (
	crashN    = 400
	crashM    = 2000
	crashSeed = 3
)

func crashControlGraph() *graph.Graph {
	g := datasets.ErdosRenyi(crashN, crashM, true, rng.New(crashSeed))
	return graph.Trivalency.Assign(g, rng.New(crashSeed^0x7112))
}

// crashBatch is the deterministic mutation batch with the given index: the
// client knows every batch's content up front, so after the kill it can
// replay exactly the prefix the victim durably applied onto a control.
// All batches are set-prob mutations against the registration-time edge
// list, so any prefix of them is applicable in order.
func crashBatch(edges []graph.Edge, i int) []dynamic.Mutation {
	muts := make([]dynamic.Mutation, 3)
	for j := range muts {
		e := edges[(i*37+j*11)%len(edges)]
		muts[j] = dynamic.Mutation{Op: dynamic.OpSetProb, U: e.From, V: e.To,
			P: float64((i*7+j*3)%97)/100 + 0.01}
	}
	return muts
}

func batchNDJSON(muts []dynamic.Mutation) string {
	var sb strings.Builder
	for _, mu := range muts {
		line, _ := json.Marshal(mu)
		sb.Write(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// startDaemon builds (once) and starts an imind process, waiting for
// healthy, and returns its base URL and process handle.
func startDaemon(t *testing.T, bin string, args ...string) (string, *exec.Cmd, *syncBuffer) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	cmd := exec.Command(bin, append([]string{"-addr", addr, "-theta", "300", "-eval", "300"}, args...)...)
	var logs syncBuffer
	cmd.Stdout, cmd.Stderr = &logs, &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })

	base := "http://" + addr
	for i := 0; i < 200; i++ {
		if resp, err := http.Get(base + "/healthz"); err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return base, cmd, &logs
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("daemon never became healthy; logs:\n%s", logs.String())
	return "", nil, nil
}

func registerCrashGraph(t *testing.T, base string) {
	t.Helper()
	reg := fmt.Sprintf(`{"name": "g", "generator": "erdos-renyi", "n": %d, "m": %d, "directed": true, "seed": %d}`,
		crashN, crashM, crashSeed)
	resp, err := http.Post(base+"/graphs", "application/json", strings.NewReader(reg))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status %d", resp.StatusCode)
	}
}

func solveOn(t *testing.T, base, model string) map[string]any {
	t.Helper()
	req := fmt.Sprintf(`{"seeds": [2, 5, 9], "budget": 4, "algorithm": "greedy-replace", "model": %q,
		"theta": 300, "seed": 11, "workers": 2, "reuse_samples": true, "eval_rounds": 300}`, model)
	resp, err := http.Post(base+"/graphs/g/solve", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve (%s) status %d: %v", model, resp.StatusCode, out)
	}
	return out
}

// TestCrashRecoveryKill9 is the durability acceptance test: an imind
// process is SIGKILLed in the middle of a mutation stream, and the
// recovered daemon must match an unkilled control that applied the same
// acknowledged batches — same epoch, bit-identical CSR, and bit-identical
// ReuseSamples solves under both IC and LT.
func TestCrashRecoveryKill9(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "imind")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataDir := t.TempDir()

	// ---- Victim: durable daemon, fsync always (acked == on disk). ----
	base, cmd, _ := startDaemon(t, bin, "-data-dir", dataDir, "-fsync", "always")
	registerCrashGraph(t, base)
	control := crashControlGraph()
	edges := control.Edges()

	// Stream batches sequentially; SIGKILL fires concurrently after the
	// 8th ack lands, so the kill hits with a request in flight.
	const killAfter = 8
	acked := 0
	killed := make(chan struct{})
	for i := 0; ; i++ {
		if acked == killAfter {
			go func() {
				cmd.Process.Kill() // SIGKILL: no drain, no final checkpoint
				close(killed)
			}()
		}
		resp, err := http.Post(base+"/graphs/g/mutate", "application/x-ndjson",
			strings.NewReader(batchNDJSON(crashBatch(edges, i))))
		if err != nil {
			break // connection died mid-request: the kill landed
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code != http.StatusOK {
			break
		}
		acked++
		if acked > killAfter+200 {
			t.Fatal("daemon survived the kill for 200 batches")
		}
	}
	<-killed
	cmd.Wait()
	if acked < killAfter {
		t.Fatalf("only %d batches acknowledged before the daemon died", acked)
	}

	// ---- In-process recovery: epoch and CSR vs the replayed control. ----
	st, err := store.Open(dataDir, store.Config{Fsync: store.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Name != "g" {
		t.Fatalf("recovered %d graphs", len(recs))
	}
	epoch := recs[0].Epoch()
	// Every acknowledged batch must have survived; the killed in-flight
	// request may have been appended before its 200 could go out.
	if epoch < uint64(acked) || epoch > uint64(acked)+1 {
		t.Fatalf("recovered epoch %d, %d batches were acknowledged", epoch, acked)
	}

	ctrlDyn := dynamic.New(control, dynamic.Config{})
	for i := 0; uint64(i) < epoch; i++ {
		if _, err := ctrlDyn.Commit(crashBatch(edges, i)); err != nil {
			t.Fatalf("control replay batch %d: %v", i, err)
		}
	}
	wantSnap, _ := ctrlDyn.Snapshot()
	gotSnap, _ := recs[0].Dyn.Snapshot()
	if wantSnap.N() != gotSnap.N() || wantSnap.M() != gotSnap.M() ||
		!reflect.DeepEqual(wantSnap.Edges(), gotSnap.Edges()) {
		t.Fatal("recovered CSR is not bit-identical to the unkilled control's")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// ---- Full-stack: restart the daemon on the same state and compare
	// ReuseSamples solves against an unkilled control daemon. ----
	base2, _, logs2 := startDaemon(t, bin, "-data-dir", dataDir, "-fsync", "always")
	resp, err := http.Get(base2 + "/graphs/g")
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		Epoch     uint64 `json:"epoch"`
		Durable   bool   `json:"durable"`
		Recovered bool   `json:"recovered"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Epoch != epoch || !info.Durable || !info.Recovered {
		t.Fatalf("restarted daemon reports %+v, want recovered epoch %d; logs:\n%s", info, epoch, logs2.String())
	}

	ctrlBase, _, _ := startDaemon(t, bin) // in-memory control daemon
	registerCrashGraph(t, ctrlBase)
	for i := 0; uint64(i) < epoch; i++ {
		resp, err := http.Post(ctrlBase+"/graphs/g/mutate", "application/x-ndjson",
			strings.NewReader(batchNDJSON(crashBatch(edges, i))))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("control daemon rejected batch %d: %d", i, resp.StatusCode)
		}
	}
	for _, model := range []string{"IC", "LT"} {
		got := solveOn(t, base2, model)
		want := solveOn(t, ctrlBase, model)
		for _, field := range []string{"blockers", "spread_before", "spread_after", "theta", "model"} {
			if !reflect.DeepEqual(got[field], want[field]) {
				t.Errorf("%s solve field %q: recovered %v != control %v", model, field, got[field], want[field])
			}
		}
	}
}

// TestGracefulShutdownCheckpoints covers the shutdown-ordering fix: after
// a SIGTERM drain, the final checkpoint must cover every acknowledged
// batch, so the next start replays zero WAL records.
func TestGracefulShutdownCheckpoints(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "imind")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataDir := t.TempDir()

	base, cmd, logs := startDaemon(t, bin, "-data-dir", dataDir, "-fsync", "interval", "-shutdown-timeout", "5s")
	registerCrashGraph(t, base)
	edges := crashControlGraph().Edges()
	for i := 0; i < 5; i++ {
		resp, err := http.Post(base+"/graphs/g/mutate", "application/x-ndjson",
			strings.NewReader(batchNDJSON(crashBatch(edges, i))))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mutate %d: %d", i, resp.StatusCode)
		}
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited non-zero: %v; logs:\n%s", err, logs.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not shut down; logs:\n%s", logs.String())
	}

	// A graceful shutdown checkpointed: recovery replays nothing.
	st, err := store.Open(dataDir, store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	recs, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Epoch() != 5 || recs[0].ReplayedBatches != 0 {
		t.Fatalf("after graceful shutdown: epoch %d, %d replayed (want 5, 0); logs:\n%s",
			recs[0].Epoch(), recs[0].ReplayedBatches, logs.String())
	}
}
