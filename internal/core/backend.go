package core

import (
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// estBackend abstracts over the two DecreaseES strategies so the greedy
// algorithms stay agnostic: fresh samples every round (the paper's
// Algorithm 2, default) or one shared pool reused across rounds
// (Options.ReuseSamples; see PooledEstimator).
type estBackend struct {
	fresh  *Estimator
	pooled *PooledEstimator
	theta  int
	base   *rng.Source
	drawn  int64
}

// newEstBackend builds the configured backend for one solve run.
func newEstBackend(in *instance, opt Options, base *rng.Source) *estBackend {
	b := &estBackend{theta: opt.Theta, base: base}
	sampler := in.sampler(opt.Diffusion)
	if opt.ReuseSamples {
		b.pooled = NewPooledEstimator(sampler, in.src, opt.Theta, opt.Workers, opt.DomAlgo, base.Split(^uint64(0)))
		b.drawn = int64(opt.Theta)
	} else {
		b.fresh = NewEstimator(sampler, opt.Workers, opt.DomAlgo)
	}
	return b
}

// newEstBackendCached wraps an already-built fresh Estimator (a Session's
// warm one) as a backend for one run. The estimator holds no per-run state
// — randomness enters only through the base source split per round — so a
// run through a warm estimator selects exactly the blockers a cold run
// with the same (Seed, Theta, Workers) would.
func newEstBackendCached(est *Estimator, opt Options, base *rng.Source) *estBackend {
	return &estBackend{fresh: est, theta: opt.Theta, base: base}
}

// decreaseES fills dst with Δ[u] on G[V\B] for the given greedy round.
func (b *estBackend) decreaseES(dst []float64, src graph.V, blocked []bool, round uint64) {
	if b.pooled != nil {
		b.pooled.DecreaseES(dst, blocked)
		return
	}
	b.fresh.DecreaseES(dst, src, blocked, b.theta, b.base.Split(round))
	b.drawn += int64(b.theta)
}

// samplesDrawn reports the number of live-edge samples generated so far
// (the pool counts once, fresh sampling counts per round).
func (b *estBackend) samplesDrawn() int64 { return b.drawn }
