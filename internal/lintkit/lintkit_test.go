package lintkit

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// incdec reports every ++/-- statement: a minimal analyzer for exercising
// the suppression machinery.
var incdec = &Analyzer{
	Name: "incdec",
	Doc:  "test analyzer: flags ++/--",
	Run: func(p *Pass) error {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if s, ok := n.(*ast.IncDecStmt); ok {
					p.Reportf(s.Pos(), "incdec here")
				}
				return true
			})
		}
		return nil
	},
}

func analyzeSrc(t *testing.T, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := NewTypesInfo()
	conf := types.Config{}
	tpkg, err := conf.Check("example.com/fix", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	pkg := &Package{PkgPath: "example.com/fix", Fset: fset, Files: []*ast.File{f}, Types: tpkg, TypesInfo: info}
	diags, err := Run([]*Package{pkg}, []*Analyzer{incdec})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return diags
}

func TestSuppressionSameLineAndLineAbove(t *testing.T) {
	diags := analyzeSrc(t, `package fix
func f() int {
	x := 0
	x++ //lint:ignore incdec trailing comments govern their own line
	//lint:ignore incdec a comment line governs the line below it
	x++
	return x
}
`)
	for _, d := range diags {
		if !d.Suppressed {
			t.Errorf("want every diagnostic suppressed, got: %s", d)
		}
	}
	if len(diags) != 2 {
		t.Errorf("want the 2 findings retained as suppressed, got %d", len(diags))
	}
}

func TestSuppressionWrongAnalyzerDoesNotMatch(t *testing.T) {
	diags := analyzeSrc(t, `package fix
func f() int {
	x := 0
	//lint:ignore otherpass justification for a different analyzer
	x++
	return x
}
`)
	var live, unused int
	for _, d := range diags {
		switch {
		case d.Analyzer == "incdec" && !d.Suppressed:
			live++
		case d.Analyzer == "lint" && strings.Contains(d.Message, "unused suppression"):
			unused++
		}
	}
	if live != 1 || unused != 1 {
		t.Errorf("want 1 live finding and 1 unused-suppression report, got live=%d unused=%d (%v)", live, unused, diags)
	}
}

func TestMalformedSuppressionReported(t *testing.T) {
	diags := analyzeSrc(t, `package fix
func f() int {
	x := 0
	//lint:ignore incdec
	x++
	return x
}
`)
	var malformed, live int
	for _, d := range diags {
		switch {
		case d.Analyzer == "lint" && strings.Contains(d.Message, "malformed suppression"):
			malformed++
		case d.Analyzer == "incdec" && !d.Suppressed:
			live++
		}
	}
	if malformed != 1 {
		t.Errorf("want a malformed-suppression report, got %v", diags)
	}
	if live != 1 {
		t.Errorf("a justification-less ignore must not suppress; got %v", diags)
	}
}

func TestDiagnosticsSorted(t *testing.T) {
	diags := analyzeSrc(t, `package fix
func f() int {
	x := 0
	x++
	x++
	x--
	return x
}
`)
	if len(diags) != 3 {
		t.Fatalf("want 3 findings, got %d", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		if diags[i].Pos.Line < diags[i-1].Pos.Line {
			t.Errorf("diagnostics out of order: %v", diags)
		}
	}
}
