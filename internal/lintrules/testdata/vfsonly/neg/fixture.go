// Negative vfsonly fixture: routing I/O through an FS-interface seam is
// exactly what the rule wants, and non-I/O uses of the os package (flag
// constants, sentinel errors, FileMode, environment reads) stay legal.
package fixture

import (
	"errors"
	"os"
)

type seamFile interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

type seam interface {
	Create(name string) (seamFile, error)
	Rename(oldpath, newpath string) error
	Stat(name string) (os.FileInfo, error)
}

func writeTmp(fs seam, path string, data []byte) error {
	f, err := fs.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fs.Rename(path, path+".done")
}

func exists(fs seam, path string) bool {
	_, err := fs.Stat(path)
	return !errors.Is(err, os.ErrNotExist)
}

func openFlags() (int, os.FileMode) {
	_ = os.Getenv("IMIND_DATA")
	return os.O_CREATE | os.O_EXCL | os.O_WRONLY, os.FileMode(0o644)
}
