package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBenchReport(t *testing.T, dir string, rep *BenchCoreReport) string {
	t.Helper()
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "BENCH_core.json")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func benchReport(workers, gomaxprocs int, sweep ...int) *BenchCoreReport {
	rep := &BenchCoreReport{Workers: workers, GoMaxProcs: gomaxprocs}
	for _, w := range sweep {
		rep.IncrementalScaling = append(rep.IncrementalScaling,
			BenchCoreScalingPoint{Workers: w, GoMaxProcs: gomaxprocs})
	}
	return rep
}

// TestBenchCoreOverwriteGuard pins the provenance rules for replacing a
// committed baseline: a matching configuration overwrites freely, any
// mismatch needs -force, and — the rule this exists for — a run on a
// machine with FEWER cores than the baseline's must never replace it
// silently, because the scaling numbers would quietly degrade.
func TestBenchCoreOverwriteGuard(t *testing.T) {
	dir := t.TempDir()

	// Missing file: always fine.
	if err := checkOverwrite(filepath.Join(dir, "absent.json"), benchReport(0, 4, 1, 2, 4), false); err != nil {
		t.Fatalf("missing baseline rejected: %v", err)
	}

	// Same configuration: fine without force.
	path := writeBenchReport(t, dir, benchReport(0, 4, 1, 2, 4))
	if err := checkOverwrite(path, benchReport(0, 4, 1, 2, 4), false); err != nil {
		t.Fatalf("matching config rejected: %v", err)
	}

	// Downgrade: baseline measured at higher GOMAXPROCS than this run.
	path = writeBenchReport(t, dir, benchReport(0, 8, 1, 2, 4, 8))
	err := checkOverwrite(path, benchReport(0, 4, 1, 2, 4), false)
	if err == nil {
		t.Fatal("gomaxprocs downgrade accepted without -force")
	}
	if !strings.Contains(err.Error(), "gomaxprocs=8") || !strings.Contains(err.Error(), "-force") {
		t.Fatalf("downgrade error does not name the mismatch: %v", err)
	}
	if err := checkOverwrite(path, benchReport(0, 4, 1, 2, 4), true); err != nil {
		t.Fatalf("-force did not override the downgrade guard: %v", err)
	}

	// Upgrade (more cores than the baseline) still trips the generic
	// config-mismatch guard: the numbers would not be comparable either.
	if err := checkOverwrite(path, benchReport(0, 16, 1, 2, 4, 16), false); err == nil {
		t.Fatal("gomaxprocs upgrade accepted without -force")
	}

	// Different sweep shape at equal gomaxprocs: generic mismatch.
	if err := checkOverwrite(path, benchReport(0, 8, 1, 2, 4), false); err == nil {
		t.Fatal("sweep shape change accepted without -force")
	}

	// Unparseable file: only force may replace it.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkOverwrite(bad, benchReport(0, 4, 1, 2, 4), false); err == nil {
		t.Fatal("unparseable baseline accepted without -force")
	}
	if err := checkOverwrite(bad, benchReport(0, 4, 1, 2, 4), true); err != nil {
		t.Fatalf("-force did not override the parse guard: %v", err)
	}
}
