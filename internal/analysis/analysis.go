// Package analysis provides structural graph analysis used by the dataset
// tooling and examples: strongly and weakly connected components, degree
// distributions, and a power-law tail estimate. These are the standard
// sanity checks when validating that a synthetic dataset stand-in behaves
// like the social network it replaces.
package analysis

import (
	"math"

	"github.com/imin-dev/imin/internal/graph"
)

// SCCResult labels each vertex with its strongly connected component.
type SCCResult struct {
	// Comp[v] is v's component id in [0, Count). Components are numbered
	// in reverse topological order of the condensation (Tarjan's order):
	// every edge of the condensation goes from a higher id to a lower id.
	Comp  []int32
	Count int
	// Sizes[c] is the vertex count of component c.
	Sizes []int32
}

// StronglyConnectedComponents runs Tarjan's algorithm iteratively (safe on
// deep graphs).
func StronglyConnectedComponents(g *graph.Graph) *SCCResult {
	n := g.N()
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	comp := make([]int32, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = -1
	}
	var (
		stack    []graph.V // Tarjan's component stack
		count    int32
		nextIdx  int32
		sizes    []int32
		frameV   []graph.V // DFS frames: vertex
		frameIdx []int32   // DFS frames: next out-neighbor offset
	)

	for root := graph.V(0); int(root) < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frameV = append(frameV[:0], root)
		frameIdx = append(frameIdx[:0], 0)
		index[root] = nextIdx
		low[root] = nextIdx
		nextIdx++
		stack = append(stack, root)
		onStack[root] = true

		for len(frameV) > 0 {
			v := frameV[len(frameV)-1]
			succ := g.OutNeighbors(v)
			advanced := false
			for frameIdx[len(frameV)-1] < int32(len(succ)) {
				w := succ[frameIdx[len(frameV)-1]]
				frameIdx[len(frameV)-1]++
				if index[w] == unvisited {
					index[w] = nextIdx
					low[w] = nextIdx
					nextIdx++
					stack = append(stack, w)
					onStack[w] = true
					frameV = append(frameV, w)
					frameIdx = append(frameIdx, 0)
					advanced = true
					break
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is finished: maybe a component root; propagate low upward.
			if low[v] == index[v] {
				size := int32(0)
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = count
					size++
					if w == v {
						break
					}
				}
				sizes = append(sizes, size)
				count++
			}
			frameV = frameV[:len(frameV)-1]
			frameIdx = frameIdx[:len(frameIdx)-1]
			if len(frameV) > 0 {
				parent := frameV[len(frameV)-1]
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	return &SCCResult{Comp: comp, Count: int(count), Sizes: sizes}
}

// WeaklyConnectedComponents labels vertices by weakly connected component
// (edge direction ignored) using union-find with path halving.
func WeaklyConnectedComponents(g *graph.Graph) *SCCResult {
	n := g.N()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for u := graph.V(0); int(u) < n; u++ {
		for _, v := range g.OutNeighbors(u) {
			union(int32(u), int32(v))
		}
	}
	comp := make([]int32, n)
	remap := make(map[int32]int32)
	var sizes []int32
	for v := 0; v < n; v++ {
		r := find(int32(v))
		id, ok := remap[r]
		if !ok {
			id = int32(len(sizes))
			remap[r] = id
			sizes = append(sizes, 0)
		}
		comp[v] = id
		sizes[id]++
	}
	return &SCCResult{Comp: comp, Count: len(sizes), Sizes: sizes}
}

// LargestComponentFraction returns the share of vertices in the biggest
// component of r.
func (r *SCCResult) LargestComponentFraction(n int) float64 {
	if n == 0 {
		return 0
	}
	var best int32
	for _, s := range r.Sizes {
		if s > best {
			best = s
		}
	}
	return float64(best) / float64(n)
}

// DegreeHistogram counts vertices per total degree (in+out), as a dense
// slice indexed by degree.
func DegreeHistogram(g *graph.Graph) []int {
	maxDeg := 0
	degs := make([]int, g.N())
	for v := graph.V(0); int(v) < g.N(); v++ {
		d := g.InDegree(v) + g.OutDegree(v)
		degs[v] = d
		if d > maxDeg {
			maxDeg = d
		}
	}
	hist := make([]int, maxDeg+1)
	for _, d := range degs {
		hist[d]++
	}
	return hist
}

// PowerLawAlpha estimates the exponent of a power-law degree tail with the
// Clauset–Shalizi–Newman continuous MLE, α = 1 + n / Σ ln(dᵢ/dmin), over
// vertices with total degree ≥ dmin. Returns NaN when fewer than 10
// vertices qualify. Social networks typically land in α ∈ [2, 3];
// Erdős–Rényi graphs produce much larger (meaningless) values, so this is
// the quick heavy-tail discriminator used in dataset validation.
func PowerLawAlpha(g *graph.Graph, dmin int) float64 {
	if dmin < 1 {
		dmin = 1
	}
	count := 0
	sum := 0.0
	for v := graph.V(0); int(v) < g.N(); v++ {
		d := g.InDegree(v) + g.OutDegree(v)
		if d >= dmin {
			count++
			sum += math.Log(float64(d) / float64(dmin))
		}
	}
	if count < 10 || sum == 0 {
		return math.NaN()
	}
	return 1 + float64(count)/sum
}
