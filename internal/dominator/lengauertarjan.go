package dominator

// LengauerTarjan computes the dominator tree of fg from root using the
// classic Lengauer–Tarjan algorithm [53] in its "simple" variant: LINK is
// plain pointer assignment and EVAL uses path compression, giving
// O(m log n) worst-case and near-linear practical behaviour. This is the
// algorithm the paper builds Algorithm 2 on.
//
// The returned Tree aliases Workspace storage: it is valid until the next
// computation with the same Workspace.
func (ws *Workspace) LengauerTarjan(fg *FlowGraph, root int32) *Tree {
	ws.grow(fg.N)
	k := ws.dfs(fg, root)

	// Initialize per-vertex state for the reachable region.
	for i := 1; i <= k; i++ {
		v := ws.vertex[i]
		ws.semi[v] = int32(i)
		ws.label[v] = v
		ws.ancestor[v] = -1
		ws.bucketHead[v] = -1
		ws.idom[v] = -1
	}
	// Unreachable vertices keep idom = -1.
	for v := 0; v < fg.N; v++ {
		if ws.dfn[v] == 0 {
			ws.idom[v] = -1
		}
	}

	// Steps 2 and 3 interleaved, processing vertices in decreasing DFS
	// order: compute semidominators, defer immediate-dominator decisions
	// through buckets.
	for i := int32(k); i >= 2; i-- {
		w := ws.vertex[i]

		// Semidominator of w: minimum over eval of its predecessors.
		for _, v := range fg.Pred(w) {
			if ws.dfn[v] == 0 {
				continue // predecessor unreachable from root
			}
			u := ws.compressEval(v)
			if ws.semi[u] < ws.semi[w] {
				ws.semi[w] = ws.semi[u]
			}
		}

		// Defer: w's idom is decided when its semidominator is linked.
		sd := ws.vertex[ws.semi[w]]
		ws.bucketNext[w] = ws.bucketHead[sd]
		ws.bucketHead[sd] = w

		// LINK(parent(w), w) — simple linking.
		p := ws.parent[w]
		ws.ancestor[w] = p

		// Process the bucket of parent(w): for each v with sdom(v) ==
		// parent(w), either idom(v) = sdom(v) or it is deferred to the
		// vertex with the smaller semidominator on the path (Lemma 3).
		for v := ws.bucketHead[p]; v != -1; {
			next := ws.bucketNext[v]
			u := ws.compressEval(v)
			if ws.semi[u] < ws.semi[v] {
				ws.idom[v] = u // defer: fixed up in step 4
			} else {
				ws.idom[v] = p
			}
			v = next
		}
		ws.bucketHead[p] = -1
	}

	// Step 4: resolve deferred idoms in increasing DFS order.
	for i := int32(2); i <= int32(k); i++ {
		w := ws.vertex[i]
		if ws.idom[w] != ws.vertex[ws.semi[w]] {
			ws.idom[w] = ws.idom[ws.idom[w]]
		}
	}
	ws.idom[root] = -1

	return &Tree{Root: root, Idom: ws.idom, Reached: k}
}
