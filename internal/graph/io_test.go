package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# comment line
% also a comment
0 1
1 2 0.25

2 0 0.5
`
	g, orig, err := ReadEdgeList(strings.NewReader(in), ReadOptions{DefaultP: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("got n=%d m=%d, want 3/3", g.N(), g.M())
	}
	if len(orig) != 3 {
		t.Fatalf("orig ids: %v", orig)
	}
	if p := g.Prob(0, 1); p != 1 {
		t.Errorf("default p = %v, want 1", p)
	}
	if p := g.Prob(1, 2); p != 0.25 {
		t.Errorf("explicit p = %v, want 0.25", p)
	}
}

func TestReadEdgeListSparseIDs(t *testing.T) {
	in := "1000 2000\n2000 30\n"
	g, orig, err := ReadEdgeList(strings.NewReader(in), ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 {
		t.Fatalf("n = %d, want 3 (dense remap)", g.N())
	}
	want := []int64{1000, 2000, 30}
	for i, id := range want {
		if orig[i] != id {
			t.Fatalf("orig = %v, want %v", orig, want)
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatal("remapped edges missing")
	}
}

func TestReadEdgeListUndirected(t *testing.T) {
	g, _, err := ReadEdgeList(strings.NewReader("0 1 0.3\n"), ReadOptions{Undirected: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 || g.Prob(0, 1) != 0.3 || g.Prob(1, 0) != 0.3 {
		t.Fatalf("undirected read failed: m=%d", g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",
		"a b\n",
		"0 b\n",
		"0 1 xyz\n",
	}
	for _, in := range cases {
		if _, _, err := ReadEdgeList(strings.NewReader(in), ReadOptions{}); err == nil {
			t.Errorf("input %q: want error, got nil", in)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := toy()
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ReadEdgeList(&buf, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip changed size: %v vs %v", g2, g)
	}
	for _, e := range g.Edges() {
		// ids may be remapped, but Figure 1's ids all appear as sources or
		// targets in file order; verify via probability multiset instead.
		_ = e
	}
	// Probability multiset must survive.
	count := func(gr *Graph, p float64) int {
		n := 0
		for _, e := range gr.Edges() {
			if e.P == p {
				n++
			}
		}
		return n
	}
	for _, p := range []float64{1, 0.5, 0.2, 0.1} {
		if count(g, p) != count(g2, p) {
			t.Errorf("probability %v count changed in round trip", p)
		}
	}
}

func TestWriteEdgeListFile(t *testing.T) {
	g := toy()
	path := t.TempDir() + "/toy.txt"
	if err := g.WriteEdgeListFile(path); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ReadEdgeListFile(path, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != g.M() {
		t.Fatalf("file round trip lost edges: %d vs %d", g2.M(), g.M())
	}
}

func TestComputeStats(t *testing.T) {
	g := toy()
	st := g.ComputeStats()
	if st.N != 9 || st.M != 10 {
		t.Fatalf("stats n/m = %d/%d", st.N, st.M)
	}
	// v5: out 4 + in 2 = 6 is the max total degree.
	if st.MaxDegree != 6 {
		t.Errorf("MaxDegree = %d, want 6", st.MaxDegree)
	}
	if st.MaxOutDeg != 4 {
		t.Errorf("MaxOutDeg = %d, want 4", st.MaxOutDeg)
	}
	if st.Isolated != 0 {
		t.Errorf("Isolated = %d, want 0", st.Isolated)
	}
	if st.ProbMin != 0.1 || st.ProbMax != 1 {
		t.Errorf("prob range [%v,%v], want [0.1,1]", st.ProbMin, st.ProbMax)
	}
	wantAvg := 2.0 * 10 / 9
	if st.AvgDegree != wantAvg {
		t.Errorf("AvgDegree = %v, want %v", st.AvgDegree, wantAvg)
	}
}
