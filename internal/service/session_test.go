package service

import (
	"testing"

	"github.com/imin-dev/imin/internal/core"
	"github.com/imin-dev/imin/internal/datasets"
	"github.com/imin-dev/imin/internal/rng"
)

// The session cache must bound its size by evicting the least recently
// used session, and count hits/misses/evictions truthfully.
func TestSessionCacheEviction(t *testing.T) {
	g := datasets.ErdosRenyi(50, 200, true, rng.New(1))
	c := NewSessionCache(2, 1, core.DomLengauerTarjan)

	keyA := SessionKey{Graph: "a", Diffusion: core.DiffusionIC}
	keyB := SessionKey{Graph: "b", Diffusion: core.DiffusionIC}
	keyC := SessionKey{Graph: "c", Diffusion: core.DiffusionIC}

	sessA, hit := c.Acquire(keyA, g, 0)
	if hit {
		t.Error("first acquire reported a hit")
	}
	if _, hit := c.Acquire(keyB, g, 0); hit {
		t.Error("acquire of b reported a hit")
	}
	// Touch a so b becomes the LRU victim.
	if got, hit := c.Acquire(keyA, g, 0); !hit || got != sessA {
		t.Error("re-acquire of a did not return the cached session")
	}
	// c overflows the capacity of 2: b must go.
	if _, hit := c.Acquire(keyC, g, 0); hit {
		t.Error("acquire of c reported a hit")
	}

	if c.Contains(keyB) {
		t.Error("b still cached after eviction")
	}
	if !c.Contains(keyA) || !c.Contains(keyC) {
		t.Error("a and c should be cached")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Evictions != 1 || st.Size != 2 || st.Capacity != 2 {
		t.Errorf("stats = %+v, want 1 hit, 3 misses, 1 eviction, size 2/2", st)
	}

	// The evicted key rebuilds a fresh session on re-acquire.
	if _, hit := c.Acquire(keyB, g, 0); hit {
		t.Error("evicted b reported a hit on re-acquire")
	}
	if c.Contains(keyA) {
		t.Error("a should be the eviction victim the second time around")
	}
}

// A same-graph, different-model key must map to a different session.
func TestSessionCacheKeyedByModel(t *testing.T) {
	g := datasets.ErdosRenyi(50, 200, true, rng.New(1))
	c := NewSessionCache(4, 1, core.DomLengauerTarjan)
	ic, _ := c.Acquire(SessionKey{Graph: "a", Diffusion: core.DiffusionIC}, g, 0)
	lt, hit := c.Acquire(SessionKey{Graph: "a", Diffusion: core.DiffusionLT}, g, 0)
	if hit {
		t.Error("LT acquire hit the IC session")
	}
	if ic == lt {
		t.Error("IC and LT share one session")
	}
	if ic.Diffusion() != core.DiffusionIC || lt.Diffusion() != core.DiffusionLT {
		t.Error("sessions bound to wrong diffusion models")
	}
}
