package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/imin-dev/imin/internal/cascade"
	"github.com/imin-dev/imin/internal/exact"
	"github.com/imin-dev/imin/internal/fixture"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// testOpt returns fast, deterministic options for the small test graphs.
func testOpt() Options {
	return Options{Theta: 4000, MCSRounds: 4000, Workers: 4, Seed: 7}
}

func TestEstimatorMatchesExample2(t *testing.T) {
	// Algorithm 2 on the toy graph must reproduce the exact Δ values of
	// Example 2: Δ[v5]=4.66, Δ[v9]=1.11, Δ[v8]=0.66, Δ[v7]=0.06, others 1.
	g := fixture.Toy()
	est := NewEstimator(cascade.NewIC(g), 4, DomLengauerTarjan)
	delta := make([]float64, g.N())
	est.DecreaseES(delta, fixture.Seed, nil, 200000, rng.New(1))
	want := fixture.Delta()
	for v := range want {
		if math.Abs(delta[v]-want[v]) > 0.02 {
			t.Errorf("Δ[v%d] = %v, want %v", v+1, delta[v], want[v])
		}
	}
	if delta[fixture.Seed] != 0 {
		t.Errorf("Δ[seed] = %v, want 0", delta[fixture.Seed])
	}
}

func TestEstimatorSNCAAgrees(t *testing.T) {
	g := fixture.Toy()
	lt := NewEstimator(cascade.NewIC(g), 4, DomLengauerTarjan)
	sn := NewEstimator(cascade.NewIC(g), 4, DomSNCA)
	dLT := make([]float64, g.N())
	dSN := make([]float64, g.N())
	lt.DecreaseES(dLT, fixture.Seed, nil, 50000, rng.New(2))
	sn.DecreaseES(dSN, fixture.Seed, nil, 50000, rng.New(2))
	for v := range dLT {
		if dLT[v] != dSN[v] {
			t.Errorf("v%d: LT estimator %v != SNCA estimator %v", v+1, dLT[v], dSN[v])
		}
	}
}

func TestEstimatorDeterministic(t *testing.T) {
	g := fixture.Toy()
	est := NewEstimator(cascade.NewIC(g), 4, DomLengauerTarjan)
	d1 := make([]float64, g.N())
	d2 := make([]float64, g.N())
	est.DecreaseES(d1, fixture.Seed, nil, 10000, rng.New(3))
	est.DecreaseES(d2, fixture.Seed, nil, 10000, rng.New(3))
	for v := range d1 {
		if d1[v] != d2[v] {
			t.Fatalf("estimator not deterministic at v%d", v+1)
		}
	}
}

func TestEstimatorRespectsBlocked(t *testing.T) {
	g := fixture.Toy()
	est := NewEstimator(cascade.NewIC(g), 2, DomLengauerTarjan)
	blocked := make([]bool, g.N())
	blocked[fixture.V5] = true
	delta := make([]float64, g.N())
	est.DecreaseES(delta, fixture.Seed, blocked, 20000, rng.New(4))
	if delta[fixture.V5] != 0 {
		t.Errorf("Δ[blocked v5] = %v, want 0", delta[fixture.V5])
	}
	// With v5 blocked only v2 and v4 are reachable; Δ[v2]=Δ[v4]=1.
	if math.Abs(delta[fixture.V2]-1) > 1e-9 || math.Abs(delta[fixture.V4]-1) > 1e-9 {
		t.Errorf("Δ[v2]=%v Δ[v4]=%v, want 1", delta[fixture.V2], delta[fixture.V4])
	}
	for _, v := range []graph.V{fixture.V3, fixture.V6, fixture.V7, fixture.V8, fixture.V9} {
		if delta[v] != 0 {
			t.Errorf("Δ[v%d] = %v, want 0 (unreachable)", v+1, delta[v])
		}
	}
}

// Property: the estimator's Δ agrees with the exact spread difference
// E(G) - E(G[V\{u}]) on random small graphs (Theorem 4 + Theorem 6).
func TestEstimatorMatchesExactProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(8) + 3
		b := graph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			b.AddEdge(graph.V(r.Intn(n)), graph.V(r.Intn(n)), float64(r.Intn(4))*0.25+0.25)
		}
		g := b.Build()
		base, err := exact.Spread(g, 0, nil, 0)
		if err != nil {
			return true
		}
		est := NewEstimator(cascade.NewIC(g), 2, DomLengauerTarjan)
		delta := make([]float64, n)
		est.DecreaseES(delta, 0, nil, 60000, rng.New(seed+1))
		blocked := make([]bool, n)
		for u := 1; u < n; u++ {
			blocked[u] = true
			su, err := exact.Spread(g, 0, blocked, 0)
			blocked[u] = false
			if err != nil {
				return true
			}
			want := base - su
			if math.Abs(delta[u]-want) > 0.12+0.05*want {
				t.Logf("seed=%d n=%d u=%d: Δ=%v exact=%v", seed, n, u, delta[u], want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestThetaBound(t *testing.T) {
	// θ grows with n·log n and shrinks with ε² and OPT.
	a := ThetaBound(1000, 0.1, 1, 1)
	bigger := ThetaBound(10000, 0.1, 1, 1)
	if bigger <= a {
		t.Error("θ must grow with n")
	}
	tighter := ThetaBound(1000, 0.01, 1, 1)
	if tighter <= a {
		t.Error("θ must grow as ε shrinks")
	}
	easier := ThetaBound(1000, 0.1, 1, 50)
	if easier >= a {
		t.Error("θ must shrink as OPT grows")
	}
	if got := ThetaBound(1, 0.1, 1, 1); got != 1 {
		t.Errorf("degenerate n: %d", got)
	}
	if p := EstimationFailureProb(1000, 1); math.Abs(p-0.001) > 1e-12 {
		t.Errorf("failure prob = %v", p)
	}
}

func TestThetaBoundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for eps <= 0")
		}
	}()
	ThetaBound(100, 0, 1, 1)
}

func TestAdvancedGreedyToy(t *testing.T) {
	g := fixture.Toy()
	res, err := Solve(g, []graph.V{fixture.Seed}, 1, AdvancedGreedy, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blockers) != 1 || res.Blockers[0] != fixture.V5 {
		t.Fatalf("AG b=1 = %v, want [v5]", res.Blockers)
	}
	// b=2: v5 plus one of v2/v4 (Table III row "Greedy"), spread 2.
	res, err = Solve(g, []graph.V{fixture.Seed}, 2, AdvancedGreedy, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blockers) != 2 || res.Blockers[0] != fixture.V5 {
		t.Fatalf("AG b=2 = %v, want v5 first", res.Blockers)
	}
	second := res.Blockers[1]
	if second != fixture.V2 && second != fixture.V4 {
		t.Fatalf("AG b=2 second blocker = v%d, want v2 or v4", second+1)
	}
	spread, err := exact.Spread(g, fixture.Seed, toBlocked(g.N(), res.Blockers), 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(spread-2) > 1e-9 {
		t.Fatalf("AG b=2 spread = %v, want 2 (Table III)", spread)
	}
	if res.SampledGraphs != int64(2*testOpt().Theta) {
		t.Errorf("sample accounting: %d", res.SampledGraphs)
	}
}

func TestGreedyReplaceToyTableIII(t *testing.T) {
	g := fixture.Toy()
	// b=1: GR initializes with an out-neighbor and replaces it with v5.
	res, err := Solve(g, []graph.V{fixture.Seed}, 1, GreedyReplace, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blockers) != 1 || res.Blockers[0] != fixture.V5 {
		t.Fatalf("GR b=1 = %v, want [v5]", res.Blockers)
	}
	// b=2: GR blocks {v2,v4}, achieving spread 1 where plain greedy gets 2.
	res, err = Solve(g, []graph.V{fixture.Seed}, 2, GreedyReplace, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	got := map[graph.V]bool{}
	for _, v := range res.Blockers {
		got[v] = true
	}
	if len(res.Blockers) != 2 || !got[fixture.V2] || !got[fixture.V4] {
		t.Fatalf("GR b=2 = %v, want {v2,v4}", res.Blockers)
	}
	spread, err := exact.Spread(g, fixture.Seed, toBlocked(g.N(), res.Blockers), 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(spread-1) > 1e-9 {
		t.Fatalf("GR b=2 spread = %v, want 1 (Table III)", spread)
	}
}

func TestBaselineGreedyToy(t *testing.T) {
	g := fixture.Toy()
	res, err := Solve(g, []graph.V{fixture.Seed}, 2, BaselineGreedy, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blockers) != 2 || res.Blockers[0] != fixture.V5 {
		t.Fatalf("BG = %v, want v5 first", res.Blockers)
	}
	if res.MCSSimulations == 0 {
		t.Error("BG must account MCS rounds")
	}
}

func TestBaselineAndAdvancedAgreeOnToy(t *testing.T) {
	// "Our computation based on sampled graphs will not sacrifice the
	// effectiveness, compared with MCS" — both greedy variants pick the
	// same blockers on the toy graph.
	g := fixture.Toy()
	bg, err := Solve(g, []graph.V{fixture.Seed}, 3, BaselineGreedy, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	ag, err := Solve(g, []graph.V{fixture.Seed}, 3, AdvancedGreedy, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	sBG, _ := exact.Spread(g, fixture.Seed, toBlocked(g.N(), bg.Blockers), 0)
	sAG, _ := exact.Spread(g, fixture.Seed, toBlocked(g.N(), ag.Blockers), 0)
	if math.Abs(sBG-sAG) > 1e-9 {
		t.Fatalf("BG spread %v != AG spread %v", sBG, sAG)
	}
}

func TestRandHeuristic(t *testing.T) {
	g := fixture.Toy()
	res, err := Solve(g, []graph.V{fixture.Seed}, 3, Rand, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blockers) != 3 {
		t.Fatalf("Rand returned %d blockers", len(res.Blockers))
	}
	seen := map[graph.V]bool{}
	for _, v := range res.Blockers {
		if v == fixture.Seed {
			t.Fatal("Rand blocked the seed")
		}
		if seen[v] {
			t.Fatal("Rand picked a duplicate")
		}
		seen[v] = true
	}
	// Deterministic under a fixed seed.
	res2, _ := Solve(g, []graph.V{fixture.Seed}, 3, Rand, testOpt())
	for i := range res.Blockers {
		if res.Blockers[i] != res2.Blockers[i] {
			t.Fatal("Rand not reproducible")
		}
	}
	// Budget larger than candidate count blocks everything blockable.
	res3, _ := Solve(g, []graph.V{fixture.Seed}, 100, Rand, testOpt())
	if len(res3.Blockers) != g.N()-1 {
		t.Fatalf("oversized budget: %d blockers", len(res3.Blockers))
	}
}

func TestOutDegreeHeuristic(t *testing.T) {
	g := fixture.Toy()
	res, err := Solve(g, []graph.V{fixture.Seed}, 1, OutDegree, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	// v5 has the highest out-degree (4).
	if len(res.Blockers) != 1 || res.Blockers[0] != fixture.V5 {
		t.Fatalf("OD = %v, want [v5]", res.Blockers)
	}
}

func TestSolveMultiSeed(t *testing.T) {
	// Seeds {v2,v4}: optimal blocker for b=1 is v5 — everything downstream
	// flows through it.
	g := fixture.Toy()
	for _, alg := range []Algorithm{AdvancedGreedy, GreedyReplace, BaselineGreedy} {
		res, err := Solve(g, []graph.V{fixture.V2, fixture.V4}, 1, alg, testOpt())
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if len(res.Blockers) != 1 || res.Blockers[0] != fixture.V5 {
			t.Fatalf("%s multi-seed = %v, want [v5]", alg, res.Blockers)
		}
	}
}

func TestSolveNeverBlocksSeeds(t *testing.T) {
	g := fixture.Toy()
	seeds := []graph.V{fixture.V1, fixture.V5}
	for _, alg := range []Algorithm{Rand, OutDegree, AdvancedGreedy, GreedyReplace, BaselineGreedy} {
		res, err := Solve(g, seeds, 4, alg, testOpt())
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		for _, v := range res.Blockers {
			if v == fixture.V1 || v == fixture.V5 {
				t.Fatalf("%s blocked a seed: %v", alg, res.Blockers)
			}
		}
	}
}

func TestSolveErrors(t *testing.T) {
	g := fixture.Toy()
	if _, err := Solve(g, nil, 1, AdvancedGreedy, testOpt()); err == nil {
		t.Error("empty seeds must error")
	}
	if _, err := Solve(g, []graph.V{99}, 1, AdvancedGreedy, testOpt()); err == nil {
		t.Error("out-of-range seed must error")
	}
	if _, err := Solve(g, []graph.V{0}, -1, AdvancedGreedy, testOpt()); err == nil {
		t.Error("negative budget must error")
	}
	if _, err := Solve(g, []graph.V{0}, 1, Algorithm("nope"), testOpt()); err == nil {
		t.Error("unknown algorithm must error")
	}
	all := make([]graph.V, g.N())
	for i := range all {
		all[i] = graph.V(i)
	}
	if _, err := Solve(g, all, 1, AdvancedGreedy, testOpt()); err == nil {
		t.Error("all-seeds instance must error")
	}
}

func TestBaselineGreedyTimeout(t *testing.T) {
	// A dense-enough graph with a heavy MCS load and a 1ms budget: BG must
	// return TimedOut with a partial (possibly empty) blocker set.
	r := rng.New(5)
	b := graph.NewBuilder(300)
	for i := 0; i < 3000; i++ {
		b.AddEdge(graph.V(r.Intn(300)), graph.V(r.Intn(300)), 0.2)
	}
	g := b.Build()
	opt := testOpt()
	opt.MCSRounds = 2000
	opt.Timeout = time.Millisecond
	res, err := Solve(g, []graph.V{0}, 5, BaselineGreedy, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Fatal("expected BG to time out")
	}
	if len(res.Blockers) >= 5 {
		t.Fatalf("timed-out run returned full blocker set of %d", len(res.Blockers))
	}
}

func TestGreedyReplaceTimeout(t *testing.T) {
	r := rng.New(6)
	b := graph.NewBuilder(400)
	for i := 0; i < 4000; i++ {
		b.AddEdge(graph.V(r.Intn(400)), graph.V(r.Intn(400)), 0.3)
	}
	g := b.Build()
	opt := testOpt()
	opt.Theta = 50000
	opt.Timeout = time.Millisecond
	res, err := Solve(g, []graph.V{0}, 50, GreedyReplace, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Fatal("expected GR to time out")
	}
	if len(res.Blockers) >= 50 {
		t.Fatalf("timed-out GR returned %d blockers", len(res.Blockers))
	}
}

func TestEvaluateSpread(t *testing.T) {
	g := fixture.Toy()
	opt := testOpt()
	s, err := EvaluateSpread(g, []graph.V{fixture.Seed}, []graph.V{fixture.V5}, 100000, opt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-3) > 0.03 {
		t.Fatalf("EvaluateSpread({v5}) = %v, want 3", s)
	}
	// Multi-seed: blocking all out-neighbors leaves exactly the seeds.
	s, err = EvaluateSpread(g, []graph.V{fixture.V1, fixture.V9}, []graph.V{fixture.V2, fixture.V4, fixture.V8}, 50000, opt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-2) > 1e-9 {
		t.Fatalf("multi-seed fully blocked spread = %v, want 2", s)
	}
	if _, err := EvaluateSpread(g, []graph.V{fixture.Seed}, []graph.V{fixture.Seed}, 100, opt); err == nil {
		t.Fatal("blocking a seed must error")
	}
	if _, err := EvaluateSpread(g, []graph.V{fixture.Seed}, []graph.V{99}, 100, opt); err == nil {
		t.Fatal("out-of-range blocker must error")
	}
}

// Property: on random graphs GreedyReplace never does worse than blocking
// out-neighbors only — its defining guarantee ("the expected spread of
// GreedyReplace is certainly not larger than the algorithm which only
// blocks the out-neighbors").
func TestGreedyReplaceBeatsOutNeighborsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(10) + 5
		bld := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			bld.AddEdge(graph.V(r.Intn(n)), graph.V(r.Intn(n)), float64(r.Intn(4))*0.25+0.25)
		}
		g := bld.Build()
		b := r.Intn(3) + 1
		opt := Options{Theta: 3000, MCSRounds: 1000, Workers: 2, Seed: seed}
		gr, err := Solve(g, []graph.V{0}, b, GreedyReplace, opt)
		if err != nil {
			return true
		}
		sGR, err := exact.Spread(g, 0, toBlocked(g.N(), gr.Blockers), 0)
		if err != nil {
			return true
		}
		// Out-neighbors-only reference: block up to b out-neighbors of the
		// seed, chosen optimally among out-neighbors.
		outs := []graph.V{}
		for _, v := range g.OutNeighbors(0) {
			outs = append(outs, v)
		}
		best := math.Inf(1)
		k := b
		if k > len(outs) {
			k = len(outs)
		}
		if k == 0 {
			return true
		}
		combos(len(outs), k, func(idx []int) {
			var bs []graph.V
			for _, i := range idx {
				bs = append(bs, outs[i])
			}
			s, err := exact.Spread(g, 0, toBlocked(g.N(), bs), 0)
			if err == nil && s < best {
				best = s
			}
		})
		// Allow sampling noise of the estimator-driven selection.
		return sGR <= best+0.25
	}
	// Pinned input stream, like crossvalidate_test.go: the noise margin is
	// statistical, and a time-seeded stream flakes on rare tail inputs
	// (0x14b4c026d122c9f0 and 0x6ca44cf2ca4ef700 exceed the margin on the
	// pre-existing solver too; the latter sits in quickRand's stream, hence
	// a dedicated source here).
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// combos enumerates k-subsets of [0,n); a tiny local helper so this test
// does not depend on package exact's internals.
func combos(n, k int, fn func([]int)) {
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		fn(idx)
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

func toBlocked(n int, blockers []graph.V) []bool {
	blocked := make([]bool, n)
	for _, v := range blockers {
		blocked[v] = true
	}
	return blocked
}

func BenchmarkDecreaseESToy(b *testing.B) {
	g := fixture.Toy()
	est := NewEstimator(cascade.NewIC(g), 1, DomLengauerTarjan)
	delta := make([]float64, g.N())
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		est.DecreaseES(delta, fixture.Seed, nil, 1000, r)
	}
}
