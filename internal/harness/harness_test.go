package harness

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/imin-dev/imin/internal/graph"
)

// fastCfg returns a configuration small enough for unit tests.
func fastCfg() Config {
	return Config{
		Scale:      0.01,
		Theta:      400,
		MCSRounds:  300,
		EvalRounds: 3000,
		NumSeeds:   5,
		Workers:    4,
		Seed:       11,
		Timeout:    5 * time.Second,
	}
}

func TestRunTable3MatchesPaper(t *testing.T) {
	var buf bytes.Buffer
	cfg := fastCfg()
	cfg.Theta = 4000
	cfg.Out = &buf
	rows, err := RunTable3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	want := map[[2]interface{}]float64{
		{"Greedy", 1}:        3,
		{"OutNeighbors", 1}:  6.66,
		{"GreedyReplace", 1}: 3,
		{"Greedy", 2}:        2,
		{"OutNeighbors", 2}:  1,
		{"GreedyReplace", 2}: 1,
	}
	for _, r := range rows {
		key := [2]interface{}{r.Algorithm, r.Budget}
		if w, ok := want[key]; ok {
			if math.Abs(r.Spread-w) > 1e-9 {
				t.Errorf("%s b=%d: spread %v, want %v", r.Algorithm, r.Budget, r.Spread, w)
			}
		} else {
			t.Errorf("unexpected row %v", key)
		}
	}
	if !strings.Contains(buf.String(), "Table III") {
		t.Error("output missing table header")
	}
}

func TestRunTable56(t *testing.T) {
	for _, model := range []graph.ProbModel{graph.Trivalency, graph.WeightedCascade} {
		var buf bytes.Buffer
		cfg := fastCfg()
		cfg.Out = &buf
		rows, err := RunTable56(cfg, model, Table56Options{ExtractSize: 18, MaxBudget: 2})
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if len(rows) != 2 {
			t.Fatalf("%v: got %d rows", model, len(rows))
		}
		for _, r := range rows {
			// The exact optimum is a lower bound on any heuristic's spread.
			if r.ExactSpread > r.GRSpread+1e-9 {
				t.Errorf("%v b=%d: exact %v > GR %v", model, r.Budget, r.ExactSpread, r.GRSpread)
			}
			// GR should be near-optimal on these tiny instances (paper: ≥
			// 99.88%; we allow sampling slack).
			if r.Ratio < 0.90 {
				t.Errorf("%v b=%d: ratio %.3f too low", model, r.Budget, r.Ratio)
			}
			if r.ExactRuntime <= 0 || r.GRRuntime <= 0 {
				t.Error("missing runtimes")
			}
		}
		// Monotonicity in budget: larger b yields no larger optimal spread.
		if rows[1].ExactSpread > rows[0].ExactSpread+1e-9 {
			t.Errorf("%v: exact spread rose with budget", model)
		}
	}
}

func TestRunTable7ShapeClaims(t *testing.T) {
	var buf bytes.Buffer
	cfg := fastCfg()
	cfg.Out = &buf
	cfg.Datasets = []string{"EmailCore", "EmailAll"}
	rows, err := RunTable7(cfg, Table7Options{Budgets: []int{3, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*2*2 {
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	slack := 0.35 // Monte-Carlo evaluation noise allowance
	for _, r := range rows {
		if r.GR <= 0 || r.RA <= 0 {
			t.Fatalf("row %+v has non-positive spread", r)
		}
		// Core effectiveness ordering: GR and AG beat RA.
		if r.GR > r.RA+slack {
			t.Errorf("%s/%v b=%d: GR %v worse than RA %v", r.Dataset, r.Model, r.Budget, r.GR, r.RA)
		}
		if r.AG > r.RA+slack {
			t.Errorf("%s/%v b=%d: AG %v worse than RA %v", r.Dataset, r.Model, r.Budget, r.AG, r.RA)
		}
		// Spread can never drop below the seed count.
		if r.GR < float64(cfg.NumSeeds)-1e-9 {
			t.Errorf("spread %v below |S|", r.GR)
		}
	}
	// Budget monotonicity for the greedy family (same dataset+model).
	for i := 1; i < len(rows); i++ {
		if rows[i].Dataset == rows[i-1].Dataset && rows[i].Model == rows[i-1].Model {
			if rows[i].GR > rows[i-1].GR+slack {
				t.Errorf("%s/%v: GR spread rose with budget: %v -> %v",
					rows[i].Dataset, rows[i].Model, rows[i-1].GR, rows[i].GR)
			}
		}
	}
}

func TestRunFig56(t *testing.T) {
	var buf bytes.Buffer
	cfg := fastCfg()
	cfg.Out = &buf
	cfg.Datasets = []string{"EmailCore"}
	pts, err := RunFig56(cfg, Fig56Options{Thetas: []int{50, 500}, Budget: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].Theta != 50 || pts[1].Theta != 500 {
		t.Fatal("theta order wrong")
	}
	if pts[0].DecreaseRatioPct != 0 {
		t.Error("first point must have no decrease ratio")
	}
	// More samples should not make results dramatically worse.
	if pts[1].Spread > pts[0].Spread*1.25 {
		t.Errorf("spread at θ=500 (%v) much worse than θ=50 (%v)", pts[1].Spread, pts[0].Spread)
	}
}

func TestRunFig78(t *testing.T) {
	var buf bytes.Buffer
	cfg := fastCfg()
	cfg.Out = &buf
	cfg.Datasets = []string{"EmailCore"}
	rows, err := RunFig78(cfg, graph.Trivalency, Fig78Options{Budget: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	if !r.BGTimedOut && r.BG < r.AG {
		t.Errorf("BG (%v) faster than AG (%v) — estimator speedup missing", r.BG, r.AG)
	}
	if r.AG <= 0 || r.GR <= 0 {
		t.Error("AG/GR runtimes missing")
	}
	if !strings.Contains(buf.String(), "Figure 7") {
		t.Error("output header missing")
	}
}

func TestRunFig78WCModel(t *testing.T) {
	cfg := fastCfg()
	cfg.Datasets = []string{"EmailCore"}
	rows, err := RunFig78(cfg, graph.WeightedCascade, Fig78Options{Budget: 2, SkipBG: true})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].BG != 0 || rows[0].BGTimedOut {
		t.Error("SkipBG must leave BG empty")
	}
}

func TestRunFig9(t *testing.T) {
	cfg := fastCfg()
	pts, err := RunFig9(cfg, Fig9Options{Budgets: []int{1, 3}, Datasets: []string{"EmailCore"}})
	if err != nil {
		t.Fatal(err)
	}
	// 2 models × 1 dataset × 2 budgets.
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if !p.BGSkipped {
			t.Error("BG should be skipped by default")
		}
		if p.AG <= 0 || p.GR <= 0 {
			t.Error("missing timings")
		}
	}
}

func TestRunFig9WithBG(t *testing.T) {
	cfg := fastCfg()
	cfg.Timeout = 2 * time.Second
	pts, err := RunFig9(cfg, Fig9Options{Budgets: []int{1}, Datasets: []string{"EmailCore"}, IncludeBG: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.BGSkipped {
			t.Fatal("IncludeBG must not skip BG")
		}
		if !p.BGTimedOut && p.BG <= 0 {
			t.Fatal("BG timing missing")
		}
	}
}

func TestRunFig1011(t *testing.T) {
	cfg := fastCfg()
	cfg.Datasets = []string{"EmailAll"}
	pts, err := RunFig1011(cfg, graph.Trivalency, Fig1011Options{SeedCounts: []int{1, 10, 100}, Budget: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points: %+v", len(pts), pts)
	}
	for i, p := range pts {
		if p.Runtime <= 0 {
			t.Errorf("point %d missing runtime", i)
		}
	}
}

func TestRunFig1011SkipsOversizedSeedCounts(t *testing.T) {
	cfg := fastCfg()
	cfg.Datasets = []string{"EmailCore"} // 50 vertices at this scale
	pts, err := RunFig1011(cfg, graph.Trivalency, Fig1011Options{SeedCounts: []int{1, 1000}, Budget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("oversized seed count not skipped: %d points", len(pts))
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Scale != 0.02 || c.Theta != 1000 || c.NumSeeds != 10 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	p := PaperScale()
	if p.Scale != 1 || p.Theta != 10000 || p.Timeout != 24*time.Hour {
		t.Fatalf("paper scale wrong: %+v", p)
	}
}

func TestSelectedSpecsErrors(t *testing.T) {
	cfg := fastCfg()
	cfg.Datasets = []string{"not-a-dataset"}
	if _, err := cfg.selectedSpecs(); err == nil {
		t.Fatal("unknown dataset must error")
	}
}
