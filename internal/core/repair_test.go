package core

import (
	"context"
	"reflect"
	"testing"

	"github.com/imin-dev/imin/internal/cascade"
	"github.com/imin-dev/imin/internal/dynamic"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// repairTestGraph builds a sparse random graph whose samples reach only a
// fraction of the vertices, so a mutation batch dirties some but not all of
// the pool — the regime where repair must prove both halves correct.
func repairTestGraph(n int, seed uint64) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < 3*n; i++ {
		b.AddEdge(graph.V(r.Intn(n)), graph.V(r.Intn(n)), float64(r.Intn(3))*0.15+0.1)
	}
	return b.Build()
}

// repairMutations perturbs a handful of existing edges and adds/removes a
// few, returning the committed batch's snapshot and changed sources/targets.
func repairMutations(t *testing.T, g *graph.Graph, seed uint64) (*graph.Graph, []graph.V, []graph.V) {
	t.Helper()
	d := dynamic.New(g, dynamic.Config{})
	r := rng.New(seed)
	var muts []dynamic.Mutation
	edges := g.Edges()
	for len(muts) < 6 {
		e := edges[r.Intn(len(edges))]
		switch r.Intn(3) {
		case 0:
			muts = append(muts, dynamic.Mutation{Op: dynamic.OpSetProb, U: e.From, V: e.To, P: r.Float64()})
		case 1:
			muts = append(muts, dynamic.Mutation{Op: dynamic.OpRemoveEdge, U: e.From, V: e.To})
		default:
			u, v := graph.V(r.Intn(g.N())), graph.V(r.Intn(g.N()))
			if u != v && !g.HasEdge(u, v) {
				muts = append(muts, dynamic.Mutation{Op: dynamic.OpAddEdge, U: u, V: v, P: r.Float64()})
			}
		}
		// Keep the batch free of duplicate edge touches so it stays valid.
		for i := 0; i < len(muts)-1; i++ {
			last := muts[len(muts)-1]
			if muts[i].U == last.U && muts[i].V == last.V {
				muts = muts[:len(muts)-1]
				break
			}
		}
	}
	info, err := d.Commit(muts)
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := d.Snapshot()
	return snap, info.ChangedSources, info.ChangedTargets
}

func poolsEqual(a, b *SamplePool) bool {
	return reflect.DeepEqual(a.vertStart, b.vertStart) &&
		reflect.DeepEqual(a.edgeStart, b.edgeStart) &&
		reflect.DeepEqual(a.vertOrig, b.vertOrig) &&
		reflect.DeepEqual(a.csrStart, b.csrStart) &&
		reflect.DeepEqual(a.edgeTo, b.edgeTo) &&
		reflect.DeepEqual(a.csrInStart, b.csrInStart) &&
		reflect.DeepEqual(a.inFrom, b.inFrom) &&
		reflect.DeepEqual(a.idxStart, b.idxStart) &&
		reflect.DeepEqual(a.idxSample, b.idxSample)
}

// TestSamplePoolRepairBitIdentical is the repair contract: for a mutation
// batch, a repaired pool equals one rebuilt from scratch at the new epoch —
// byte for byte, at every worker count, with only the truly affected
// samples redrawn.
func TestSamplePoolRepairBitIdentical(t *testing.T) {
	sawPartial := false // at least one seed must leave clean samples to copy
	for _, seed := range []uint64{1, 2, 42} {
		g := repairTestGraph(40, seed)
		const theta = 300
		pool := NewSamplePool(cascade.NewIC(g), 0, theta, 4, rng.New(seed+9))
		snap, changed, _ := repairMutations(t, g, seed+50)
		freshSampler := cascade.NewIC(snap)
		want := NewSamplePool(freshSampler, 0, theta, 4, rng.New(seed+9))

		for _, w := range []int{1, 2, 4, 8} {
			got, dirty := pool.Repair(freshSampler, changed, w)
			if !poolsEqual(got, want) {
				t.Fatalf("seed=%d workers=%d: repaired pool differs from fresh rebuild", seed, w)
			}
			if len(dirty) == 0 {
				t.Fatalf("seed=%d: mutation batch dirtied no samples — test exercises nothing", seed)
			}
			if len(dirty) < theta {
				sawPartial = true
			}
			// Every clean sample must match the OLD pool too (no redraw).
			mark := make([]bool, theta)
			for _, i := range dirty {
				mark[i] = true
			}
			var ov, nv sampleView
			for i := 0; i < theta; i++ {
				if mark[i] {
					continue
				}
				pool.view(i, &ov)
				got.view(i, &nv)
				if !reflect.DeepEqual(ov.orig, nv.orig) || !reflect.DeepEqual(ov.outTo, nv.outTo) {
					t.Fatalf("seed=%d: clean sample %d changed content", seed, i)
				}
			}
		}

		// No-op repair (no changed sources) must share and still be equal.
		same, dirty := pool.Repair(cascade.NewIC(g), nil, 2)
		if len(dirty) != 0 || !poolsEqual(same, pool) {
			t.Fatalf("seed=%d: no-op repair redrew %d samples", seed, len(dirty))
		}
	}
	if !sawPartial {
		t.Fatal("every seed dirtied the whole pool — the clean-copy path was never exercised")
	}
}

// TestIncrementalRepairMatchesRebuild drives a primed, mid-trajectory
// incremental estimator through a pool repair and requires its subsequent
// Δ vectors to be bit-identical to a from-scratch estimator on the rebuilt
// pool, at workers 1/2/4/8 — including a worker change in between, which
// must not lose the repair's queued dirty samples.
func TestIncrementalRepairMatchesRebuild(t *testing.T) {
	for _, seed := range []uint64{3, 7} {
		g := repairTestGraph(35, seed)
		const theta = 250
		snap, changed, _ := repairMutations(t, g, seed+50)
		freshPool := NewSamplePool(cascade.NewIC(snap), 0, theta, 3, rng.New(seed+9))

		for _, w := range []int{1, 2, 4, 8} {
			pool := NewSamplePool(cascade.NewIC(g), 0, theta, 3, rng.New(seed+9))
			est := NewIncrementalPooledEstimatorFromPool(pool, w, DomLengauerTarjan)

			// Prime and walk a short greedy trajectory pre-mutation.
			n := g.N()
			blocked := make([]bool, n)
			dst := make([]float64, n)
			for round := 0; round < 3; round++ {
				est.DecreaseES(dst, blocked)
				best := graph.V(1 + (round*7)%(n-1))
				blocked[best] = true
			}

			newPool, dirty := pool.Repair(cascade.NewIC(snap), changed, w)
			if !poolsEqual(newPool, freshPool) {
				t.Fatalf("seed=%d w=%d: repaired pool != fresh pool", seed, w)
			}
			est.RepairPool(newPool, dirty)
			if w == 4 {
				// Regression: resharding between repair and the next round
				// must carry the queued dirty samples and touched marks.
				est.SetWorkers(2)
			}

			ref := NewIncrementalPooledEstimatorFromPool(freshPool, 3, DomLengauerTarjan)
			refDst := make([]float64, n)
			for round := 0; round < 4; round++ {
				est.DecreaseES(dst, blocked)
				ref.DecreaseES(refDst, blocked)
				for v := range dst {
					if dst[v] != refDst[v] { // exact float equality, deliberately
						t.Fatalf("seed=%d w=%d round=%d v=%d: repaired %v != rebuilt %v",
							seed, w, round, v, dst[v], refDst[v])
					}
				}
				best := graph.V(2 + (round*5)%(n-2))
				blocked[best] = !blocked[best]
			}
			if st := est.Stats(); st.SamplesReprocessed >= st.Rounds*int64(theta) {
				t.Errorf("seed=%d w=%d: repair degenerated to full re-scans", seed, w)
			}
		}
	}
}

// TestSessionAdvanceKeepsWarmSolvesExact is the end-to-end contract: a warm
// session migrated across a mutation batch returns exactly the blockers a
// cold solve on the mutated graph would, without rebuilding its pools.
func TestSessionAdvanceKeepsWarmSolvesExact(t *testing.T) {
	ctx := context.Background()
	g := repairTestGraph(60, 11)
	seeds := []graph.V{1, 4, 9}
	opt := Options{Theta: 300, Seed: 5, Workers: 2, ReuseSamples: true}

	sess := NewSession(g, DiffusionIC, DomLengauerTarjan, 2)
	if _, err := sess.Solve(ctx, seeds, 4, AdvancedGreedy, opt); err != nil {
		t.Fatal(err)
	}

	snap, changed, targets := repairMutations(t, g, 77)
	h, err := sess.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	st := h.Advance(snap, 1, changed, targets)
	if epoch := h.Epoch(); epoch != 1 {
		t.Fatalf("Epoch = %d, want 1", epoch)
	}
	h.Release()
	if st.Instances != 1 || st.PoolsRepaired != 1 || st.PoolsDropped != 0 {
		t.Fatalf("AdvanceStats = %+v, want 1 instance, 1 repaired pool", st)
	}
	if st.SamplesRedrawn == 0 || st.SamplesKept == 0 {
		t.Fatalf("AdvanceStats = %+v — degenerate repair", st)
	}

	warm, err := sess.Solve(ctx, seeds, 4, AdvancedGreedy, opt)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Solve(snap, seeds, 4, AdvancedGreedy, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm.Blockers, cold.Blockers) {
		t.Fatalf("advanced warm blockers %v != cold blockers on mutated graph %v", warm.Blockers, cold.Blockers)
	}
	if warm.SampledGraphs != 0 {
		t.Fatalf("advanced warm solve drew %d samples, want 0 (pool repaired, not rebuilt)", warm.SampledGraphs)
	}
	stats := sess.Stats()
	if stats.PoolBuilds != 1 || stats.Advances != 1 {
		t.Fatalf("Stats = %+v, want PoolBuilds 1, Advances 1", stats)
	}
}

// TestSessionAdvanceVertexGrowth covers the vertex-add paths: a single-seed
// instance repairs across a grown vertex space, while a multi-seed instance
// must drop its pools (the super-seed id moved) yet still solve correctly.
func TestSessionAdvanceVertexGrowth(t *testing.T) {
	ctx := context.Background()
	g := repairTestGraph(50, 21)
	opt := Options{Theta: 200, Seed: 3, Workers: 2, ReuseSamples: true}

	d := dynamic.New(g, dynamic.Config{})
	info, err := d.Commit([]dynamic.Mutation{
		{Op: dynamic.OpAddVertex},
		{Op: dynamic.OpAddEdge, U: 2, V: graph.V(g.N()), P: 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := d.Snapshot()

	for _, tc := range []struct {
		name      string
		seeds     []graph.V
		wantDrops int
	}{
		{"single-seed repairs", []graph.V{2}, 0},
		{"multi-seed drops pools", []graph.V{2, 5}, 1},
	} {
		sess := NewSession(g, DiffusionIC, DomLengauerTarjan, 2)
		if _, err := sess.Solve(ctx, tc.seeds, 3, GreedyReplace, opt); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		h, err := sess.Acquire(ctx)
		if err != nil {
			t.Fatal(err)
		}
		st := h.Advance(snap, 1, info.ChangedSources, info.ChangedTargets)
		h.Release()
		if st.PoolsDropped != tc.wantDrops || st.PoolsRepaired != 1-tc.wantDrops {
			t.Fatalf("%s: AdvanceStats = %+v, want %d dropped", tc.name, st, tc.wantDrops)
		}
		warm, err := sess.Solve(ctx, tc.seeds, 3, GreedyReplace, opt)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := Solve(snap, tc.seeds, 3, GreedyReplace, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(warm.Blockers, cold.Blockers) {
			t.Fatalf("%s: warm %v != cold %v", tc.name, warm.Blockers, cold.Blockers)
		}
	}
}

// TestSamplePoolRepairLTBitIdentical is the LT regression for the dirty
// criterion: an LT replay reads the in-rows of vertices it inspects but
// never reaches, so a changed edge can invalidate samples containing
// neither endpoint — only an old in-neighbor of the target. The minimal
// case (0→2, 1→2, source 1): removing (0,2) changes no sample's contained
// vertices' out-rows, yet vertex 2's trigger draw shifts. RepairSetLT must
// catch it; the randomized part checks the widened criterion end-to-end at
// several worker counts.
func TestSamplePoolRepairLTBitIdentical(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 2, 0.5)
	b.AddEdge(1, 2, 0.5)
	g := b.Build()
	const theta = 64
	pool := NewSamplePool(cascade.NewLT(g), 1, theta, 2, rng.New(3))

	d := dynamic.New(g, dynamic.Config{})
	info, err := d.Commit([]dynamic.Mutation{{Op: dynamic.OpRemoveEdge, U: 0, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := d.Snapshot()
	ltSampler := cascade.NewLT(snap)
	want := NewSamplePool(ltSampler, 1, theta, 2, rng.New(3))

	criterion := RepairSetLT(g, info.ChangedSources, info.ChangedTargets)
	if !reflect.DeepEqual(criterion, []graph.V{0, 1}) {
		t.Fatalf("RepairSetLT = %v, want [0 1] (source 0 plus 2's old in-neighbors)", criterion)
	}
	got, dirty := pool.Repair(ltSampler, criterion, 2)
	if !poolsEqual(got, want) {
		t.Fatal("LT repair with the widened criterion differs from a fresh rebuild")
	}
	// Demonstrate the criterion matters: sources alone miss the divergence
	// (vertex 0 is unreachable from source 1, so no sample contains it).
	naive, naiveDirty := pool.Repair(ltSampler, info.ChangedSources, 2)
	if len(naiveDirty) != 0 {
		t.Fatalf("precondition broke: naive criterion dirtied %d samples", len(naiveDirty))
	}
	if poolsEqual(naive, want) {
		t.Fatal("test lost its teeth: the naive source-only criterion no longer diverges")
	}
	if len(dirty) == 0 {
		t.Fatal("widened criterion dirtied nothing")
	}

	for _, seed := range []uint64{4, 9} {
		g := repairTestGraph(35, seed)
		pool := NewSamplePool(cascade.NewLT(g), 0, 300, 3, rng.New(seed+9))
		snap, sources, targets := repairMutations(t, g, seed+50)
		ltSampler := cascade.NewLT(snap)
		want := NewSamplePool(ltSampler, 0, 300, 3, rng.New(seed+9))
		for _, w := range []int{1, 2, 4, 8} {
			got, _ := pool.Repair(ltSampler, RepairSetLT(g, sources, targets), w)
			if !poolsEqual(got, want) {
				t.Fatalf("seed=%d workers=%d: repaired LT pool differs from fresh rebuild", seed, w)
			}
		}
	}
}

// TestSessionAdvanceLTKeepsWarmSolvesExact is the session-level LT
// contract: an advanced LT session's warm solve equals a cold solve on the
// mutated graph — the path the HTTP mutate endpoint drives for LT sessions.
func TestSessionAdvanceLTKeepsWarmSolvesExact(t *testing.T) {
	ctx := context.Background()
	g := repairTestGraph(60, 31)
	seeds := []graph.V{1, 4, 9}
	opt := Options{Theta: 300, Seed: 5, Workers: 2, ReuseSamples: true, Diffusion: DiffusionLT}

	sess := NewSession(g, DiffusionLT, DomLengauerTarjan, 2)
	if _, err := sess.Solve(ctx, seeds, 4, AdvancedGreedy, opt); err != nil {
		t.Fatal(err)
	}
	snap, sources, targets := repairMutations(t, g, 97)
	h, err := sess.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	st := h.Advance(snap, 1, sources, targets)
	h.Release()
	if st.PoolsRepaired != 1 {
		t.Fatalf("AdvanceStats = %+v", st)
	}

	warm, err := sess.Solve(ctx, seeds, 4, AdvancedGreedy, opt)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Solve(snap, seeds, 4, AdvancedGreedy, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm.Blockers, cold.Blockers) {
		t.Fatalf("LT advanced warm blockers %v != cold blockers %v", warm.Blockers, cold.Blockers)
	}
	if warm.SampledGraphs != 0 {
		t.Fatalf("LT warm solve drew %d samples after advance", warm.SampledGraphs)
	}
}
