package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/imin-dev/imin/internal/cascade"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// Algorithm names a blocker-selection strategy.
type Algorithm string

const (
	// Rand picks b random non-seed vertices (baseline "RA").
	Rand Algorithm = "rand"
	// OutDegree picks the b highest-out-degree non-seed vertices ("OD").
	OutDegree Algorithm = "outdegree"
	// BaselineGreedy is Algorithm 1: greedy with Monte-Carlo simulations,
	// the prior state of the art ("BG").
	BaselineGreedy Algorithm = "baseline-greedy"
	// AdvancedGreedy is Algorithm 3: greedy driven by the sampled-graph +
	// dominator-tree estimator ("AG").
	AdvancedGreedy Algorithm = "advanced-greedy"
	// GreedyReplace is Algorithm 4: out-neighbor initialization followed by
	// reverse-order replacement ("GR").
	GreedyReplace Algorithm = "greedy-replace"
)

// Diffusion selects the diffusion model.
type Diffusion int

const (
	// DiffusionIC is the independent cascade model (the paper's focus).
	DiffusionIC Diffusion = iota
	// DiffusionLT is the linear threshold model via the triggering-model
	// extension of Section V-E; edge probabilities act as LT weights.
	DiffusionLT
)

// Options configures a Solve run. The zero value picks the paper's default
// parameters scaled for interactive use; see the field comments.
type Options struct {
	// Theta is the number of sampled graphs per estimation round
	// (Algorithm 2's θ). Default 10000, the paper's setting.
	Theta int
	// MCSRounds is the number of Monte-Carlo rounds BaselineGreedy uses per
	// spread evaluation (the paper's r). Default 10000.
	MCSRounds int
	// Workers bounds internal parallelism. Default GOMAXPROCS.
	Workers int
	// Seed makes the run reproducible. Two runs with equal options return
	// identical blocker sets.
	Seed uint64
	// Diffusion selects IC (default) or LT.
	Diffusion Diffusion
	// DomAlgo selects the dominator algorithm inside the estimator.
	DomAlgo DomAlgo
	// ReuseSamples draws the θ live-edge samples once and reuses the pool
	// across greedy rounds (common random numbers) instead of resampling
	// every round — the DESIGN.md §6 "sampling reuse" variant, implemented
	// by PooledEstimator. Costs memory proportional to θ × sample size.
	ReuseSamples bool
	// PoolEncoding selects the arena layout of ReuseSamples pools: PoolFlat
	// (default, fastest scans) or PoolCompressed (delta+varint sections,
	// typically well under half the bytes at a small per-dirty-sample
	// decode cost). Results are bit-identical across encodings; ignored
	// when ReuseSamples is false.
	PoolEncoding PoolEncoding
	// Timeout aborts the run after the given duration, returning the
	// blockers selected so far with Result.TimedOut set. Zero means no
	// limit. (The paper caps runs at 24 hours; Figure 7/8 report BG timing
	// out on most datasets.)
	Timeout time.Duration
	// OnRound, when non-nil, is invoked after each greedy round of
	// AdvancedGreedy and GreedyReplace with that round's timing and
	// estimator work counts. It is a pure observer: the selection is
	// bit-identical whether or not it is set, the callback runs on the
	// solving goroutine (keep it cheap), and a nil hook costs nothing —
	// the loops take no timestamps when it is unset. BaselineGreedy and
	// the Rand/OutDegree baselines do not emit rounds.
	OnRound func(RoundInfo)
}

// RoundInfo describes one completed greedy round for Options.OnRound.
type RoundInfo struct {
	// Round is the 0-based index of the round within the run; GreedyReplace
	// keeps counting across its two phases.
	Round int
	// Phase is "select" for AdvancedGreedy rounds and GreedyReplace's
	// out-neighbor phase, "replace" for GreedyReplace's replacement pass.
	Phase string
	// Chosen is the vertex blocked (or kept, in a replacement round that
	// found no swap) this round.
	Chosen graph.V
	// Duration is the wall-clock time of the round.
	Duration time.Duration
	// SamplesDirty counts the live-edge samples the estimator processed
	// this round: reprocessed dirty samples for the incremental pooled
	// estimator, freshly drawn samples otherwise. SamplesStolen counts how
	// many of those a work-stealing shard took from a neighbor.
	SamplesDirty  int64
	SamplesStolen int64
}

func (o Options) withDefaults() Options {
	if o.Theta == 0 {
		o.Theta = 10000
	}
	if o.MCSRounds == 0 {
		o.MCSRounds = 10000
	}
	return o
}

// Result reports a Solve run.
type Result struct {
	// Blockers is the selected blocker set, |Blockers| ≤ b, in original
	// vertex ids, in selection order.
	Blockers []graph.V
	// Runtime is the wall-clock duration of the selection.
	Runtime time.Duration
	// TimedOut reports whether the run hit Options.Timeout; Blockers then
	// holds the partial selection.
	TimedOut bool
	// Canceled reports whether the run was stopped early by the caller's
	// context (SolveContext / Session.Solve); Blockers then holds the
	// partial selection, mirroring TimedOut.
	Canceled bool
	// SampledGraphs counts live-edge samples drawn (AG/GR) and
	// MCSSimulations counts Monte-Carlo rounds run (BG), for the cost
	// accounting in the efficiency experiments.
	SampledGraphs  int64
	MCSSimulations int64
}

// instance is a single-source reduction of an IMIN problem.
type instance struct {
	g        *graph.Graph // working graph (unified when |seeds| > 1)
	src      graph.V
	isSeed   []bool // over working-graph ids; excludes super-seed
	numSeeds int
	orig     *graph.Graph // the caller's graph (original ids = working ids)
	cands    []graph.V    // blockable vertices, ascending (not src, not a seed)
}

// newInstance applies the multi-seed reduction of Section V.
func newInstance(g *graph.Graph, seeds []graph.V) (*instance, error) {
	if len(seeds) == 0 {
		return nil, errors.New("core: empty seed set")
	}
	for _, s := range seeds {
		if s < 0 || int(s) >= g.N() {
			return nil, fmt.Errorf("core: seed %d out of range [0,%d)", s, g.N())
		}
	}
	isSeed := make([]bool, g.N()+1)
	distinct := 0
	for _, s := range seeds {
		if !isSeed[s] {
			isSeed[s] = true
			distinct++
		}
	}
	if distinct == g.N() {
		return nil, errors.New("core: every vertex is a seed; nothing to block")
	}
	var in *instance
	if distinct == 1 {
		var src graph.V
		for _, s := range seeds {
			src = s
			break
		}
		in = &instance{g: g, src: src, isSeed: isSeed[:g.N()], numSeeds: 1, orig: g}
	} else {
		unified, super := g.UnifySeeds(seeds)
		in = &instance{g: unified, src: super, isSeed: isSeed, numSeeds: distinct, orig: g}
	}
	// The candidate id list is shared by every selection loop (greedy argmax
	// scans, the Rand/OutDegree baselines): built once per instance, it keeps
	// per-round scans O(candidates) instead of O(n) re-filtering, and a
	// session-cached instance pays it only on first sight of a seed set.
	in.cands = make([]graph.V, 0, in.orig.N()-distinct)
	for u := graph.V(0); int(u) < in.orig.N(); u++ {
		if in.candidate(u) {
			in.cands = append(in.cands, u)
		}
	}
	return in, nil
}

// sampler builds the live-edge sampler for the chosen diffusion model.
func (in *instance) sampler(d Diffusion) cascade.LiveSampler {
	if d == DiffusionLT {
		return cascade.NewLT(in.g)
	}
	return cascade.NewIC(in.g)
}

// candidate reports whether u may be blocked: not the source, not a seed.
func (in *instance) candidate(u graph.V) bool {
	return u != in.src && !in.isSeed[u]
}

// Solve selects at most b blockers for seed set seeds on g using the chosen
// algorithm. It returns the blockers in original vertex ids.
func Solve(g *graph.Graph, seeds []graph.V, b int, alg Algorithm, opt Options) (Result, error) {
	return SolveContext(context.Background(), g, seeds, b, alg, opt)
}

// SolveContext is Solve with a cancelable context: when ctx is canceled the
// greedy loops stop at the next round boundary (BaselineGreedy: the next
// candidate evaluation) and the partial selection is returned with
// Result.Canceled set, exactly like an Options.Timeout expiry sets
// Result.TimedOut. No error is returned for cancellation, so long-running
// services can still use the partial blocker set.
func SolveContext(ctx context.Context, g *graph.Graph, seeds []graph.V, b int, alg Algorithm, opt Options) (Result, error) {
	// Validate before newInstance: the multi-seed reduction copies the
	// whole graph, which bad input should not pay for.
	if b < 0 {
		return Result{}, fmt.Errorf("core: negative budget %d", b)
	}
	in, err := newInstance(g, seeds)
	if err != nil {
		return Result{}, err
	}
	return solveInstance(ctx, in, warmState{}, b, alg, opt)
}

// warmState carries a Session's cached estimator state into solveInstance.
// The zero value means a cold run: everything is built from scratch.
type warmState struct {
	// fresh is a warm Algorithm 2 estimator over the instance's sampler,
	// reused instead of allocating fresh worker scratch. Ignored by
	// ReuseSamples runs and by algorithms that do not use the estimator.
	fresh *Estimator
	// incr is a warm pool-backed incremental estimator whose pool matches
	// (Options.Seed, Options.Theta); ReuseSamples runs use it instead of
	// drawing a new pool. poolBuilt records whether the session had to draw
	// the pool for this very call, for the SampledGraphs cost accounting.
	incr      *IncrementalPooledEstimator
	poolBuilt bool
}

// solveInstance dispatches a prepared instance to the chosen algorithm.
// Callers (SolveContext, Session.Solve) have already rejected negative
// budgets — before paying for instance preparation.
func solveInstance(ctx context.Context, in *instance, warm warmState, b int, alg Algorithm, opt Options) (Result, error) {
	opt = opt.withDefaults()
	start := time.Now()
	halt := stopper{ctx: ctx, dl: opt.deadline(start)}
	var res Result
	switch alg {
	case Rand:
		res = solveRand(in, b, opt)
	case OutDegree:
		res = solveOutDegree(in, b, opt)
	case BaselineGreedy:
		res = solveBaselineGreedy(halt, in, b, opt)
	case AdvancedGreedy, GreedyReplace:
		base := rng.New(opt.Seed)
		var est *estBackend
		switch {
		case opt.ReuseSamples && warm.incr != nil:
			est = newEstBackendWarmPool(warm.incr, opt, base)
			if warm.poolBuilt {
				est.drawn = int64(opt.Theta)
			}
		case !opt.ReuseSamples && warm.fresh != nil:
			est = newEstBackendCached(warm.fresh, opt, base)
		default:
			est = newEstBackend(in, opt, base)
		}
		if alg == AdvancedGreedy {
			res = solveAdvancedGreedy(halt, in, est, b, opt)
		} else {
			res = solveGreedyReplace(halt, in, est, b, opt)
		}
	default:
		return Result{}, fmt.Errorf("core: unknown algorithm %q", alg)
	}
	res.Runtime = time.Since(start)
	return res, nil
}

// EvaluateSpread estimates the expected spread E(S, G[V\B]) of a blocker
// set via Monte-Carlo simulation with the given number of rounds, in
// original-problem terms (seeds count toward the spread). This is how the
// effectiveness numbers of Table VII are measured.
func EvaluateSpread(g *graph.Graph, seeds []graph.V, blockers []graph.V, rounds int, opt Options) (float64, error) {
	opt = opt.withDefaults()
	in, err := newInstance(g, seeds)
	if err != nil {
		return 0, err
	}
	blocked := make([]bool, in.g.N())
	for _, v := range blockers {
		if v < 0 || int(v) >= g.N() {
			return 0, fmt.Errorf("core: blocker %d out of range", v)
		}
		if in.isSeed[v] {
			return 0, fmt.Errorf("core: blocker %d is a seed", v)
		}
		blocked[v] = true
	}
	s := in.sampler(opt.Diffusion)
	unifiedSpread := cascade.EstimateSpreadParallel(s, in.src, blocked, rounds, opt.Workers, rng.New(opt.Seed^0x5eed))
	return graph.SpreadFromUnified(unifiedSpread, in.numSeeds), nil
}

// deadline converts Options.Timeout into an absolute deadline; the zero
// time means "no deadline".
func (o Options) deadline(start time.Time) time.Time {
	if o.Timeout <= 0 {
		return time.Time{}
	}
	return start.Add(o.Timeout)
}

func pastDeadline(dl time.Time) bool {
	return !dl.IsZero() && time.Now().After(dl)
}

// stopper bundles the two early-exit signals the greedy loops poll between
// rounds: the Options.Timeout deadline and caller-context cancellation.
type stopper struct {
	ctx context.Context
	dl  time.Time
}

// stop reports whether the run should end now with a partial result.
func (s stopper) stop() bool {
	if s.ctx != nil {
		select {
		case <-s.ctx.Done():
			return true
		default:
		}
	}
	return pastDeadline(s.dl)
}

// abort stamps the matching early-exit flag onto a partial result.
func (s stopper) abort(res Result) Result {
	if s.ctx != nil && s.ctx.Err() != nil {
		res.Canceled = true
	} else {
		res.TimedOut = true
	}
	return res
}
