package store

import (
	"errors"
	"syscall"
)

// The durability layer splits I/O failures into two classes, because the
// right response differs:
//
//   - Transient: the operation may succeed if simply retried later —
//     classically ENOSPC (space can be freed), plus scheduling-flavored
//     errnos. Background work (checkpoints) retries these with backoff;
//     the serving layer keeps the graph writable through a short outage.
//
//   - Permanent: retrying the same bytes is pointless or dangerous — EIO
//     (the medium misbehaved; what actually landed is unknown), corruption
//     detected by CRC, or anything unclassified. The WAL poisons itself on
//     any append/fsync failure regardless of class (acked-means-durable
//     admits no optimism about a half-written tail); the serving layer's
//     answer to a permanent fault is degraded mode plus a self-heal
//     checkpoint onto a fresh generation, not a retry of the failed write.

// FaultClass is the retry classification of a storage error.
type FaultClass int

const (
	// FaultNone classifies nil.
	FaultNone FaultClass = iota
	// FaultTransient errors may clear on their own; bounded retry is sound.
	FaultTransient
	// FaultPermanent errors will not clear by retrying the same operation.
	FaultPermanent
)

func (c FaultClass) String() string {
	switch c {
	case FaultNone:
		return "none"
	case FaultTransient:
		return "transient"
	}
	return "permanent"
}

// transientErrnos are the kernel errors worth retrying: resource
// exhaustion and contention, not medium failure.
var transientErrnos = []syscall.Errno{
	syscall.ENOSPC,
	syscall.EDQUOT,
	syscall.EAGAIN,
	syscall.EINTR,
	syscall.EBUSY,
	syscall.ETIMEDOUT,
	syscall.EMFILE,
	syscall.ENFILE,
}

// Classify maps a storage error to its fault class. Unknown errors are
// permanent: optimistic retries against an unclassified disk fault are how
// durability bugs hide.
func Classify(err error) FaultClass {
	if err == nil {
		return FaultNone
	}
	for _, errno := range transientErrnos {
		if errors.Is(err, errno) {
			return FaultTransient
		}
	}
	return FaultPermanent
}

// IsTransient reports whether err is worth a bounded retry.
func IsTransient(err error) bool { return Classify(err) == FaultTransient }
