package core

import (
	"testing"

	"github.com/imin-dev/imin/internal/datasets"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// The DecreaseES trajectory benchmarks measure the per-round estimator cost
// of one b-round AdvancedGreedy selection on the ~100k-edge serving
// benchmark graph (the same generator internal/service/bench_test.go uses),
// the dominant term of solve latency under serving traffic:
//
//	Fresh        resamples θ live-edge graphs every round (the paper's
//	             Algorithm 2).
//	Pooled       draws the pool once, re-scans all θ stored samples per
//	             round.
//	Incremental  draws the pool once, then re-processes only the samples
//	             containing the vertex blocked in the previous round. Its
//	             loop includes the round-0 priming scan, so the reported
//	             ns/round is the honest cold-solve average.
//
// Run with:
//
//	go test ./internal/core -run '^$' -bench '^BenchmarkDecreaseES_' -benchmem
//
// cmd/experiments -exp benchcore runs the same workload standalone and
// writes BENCH_core.json for the committed baseline.
const (
	estBenchN      = 20_000 // preferential attachment, ~5 edges/vertex → ~100k edges
	estBenchEPV    = 5
	estBenchSeeds  = 10
	estBenchTheta  = 1000
	estBenchRounds = 10 // the budget b: one DecreaseES call per greedy round
)

func estBenchInstance(b *testing.B) *instance {
	b.Helper()
	g := datasets.PreferentialAttachment(estBenchN, estBenchEPV, true, rng.New(1))
	g = graph.Trivalency.Assign(g, rng.New(2))
	seeds, err := datasets.RandomSeeds(g, estBenchSeeds, true, rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	in, err := newInstance(g, seeds)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// benchTrajectory runs one b-round AdvancedGreedy selection over the pool
// and records the blocker picked each round. The timed loops replay this
// fixed trajectory so the measurement isolates the DecreaseES call — the
// argmax scan is the same for every estimator and is benchmarked at the
// solve level. Pooled and incremental are bit-identical, so the trajectory
// is exactly what both would pick live.
func benchTrajectory(b *testing.B, in *instance, pool *SamplePool) []graph.V {
	b.Helper()
	est := NewPooledEstimatorFromPool(pool, 0, DomLengauerTarjan)
	blocked := make([]bool, in.g.N())
	delta := make([]float64, in.g.N())
	traj := make([]graph.V, 0, estBenchRounds)
	for round := 0; round < estBenchRounds; round++ {
		est.DecreaseES(delta, blocked)
		best := pickMax(in, blocked, delta)
		if best == -1 {
			b.Fatal("ran out of candidates")
		}
		blocked[best] = true
		traj = append(traj, best)
	}
	return traj
}

// greedyRounds replays the recorded trajectory through the backend: one
// DecreaseES call per round, then the round's blocker is applied — the
// per-round estimator work of solveAdvancedGreedy. The blocker set is
// cleared (with flips reported) at the end, so a persistent estimator sees
// the repeated-solve pattern a warm session serves.
func greedyRounds(in *instance, est *estBackend, traj []graph.V, blocked []bool) {
	for round, v := range traj {
		est.decreaseES(in.src, blocked, uint64(round))
		blocked[v] = true
		est.noteFlip(v)
	}
	for _, v := range traj {
		blocked[v] = false
		est.noteFlip(v)
	}
}

func reportPerRound(b *testing.B) {
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*estBenchRounds), "ns/round")
}

func BenchmarkDecreaseES_Fresh(b *testing.B) {
	in := estBenchInstance(b)
	pool := NewSamplePool(in.sampler(DiffusionIC), in.src, estBenchTheta, 0, rng.New(7))
	traj := benchTrajectory(b, in, pool)
	blocked := make([]bool, in.g.N())
	base := rng.New(7)
	est := newEstBackendCached(NewEstimator(in.sampler(DiffusionIC), 0, DomLengauerTarjan), Options{Theta: estBenchTheta}, base)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		greedyRounds(in, est, traj, blocked)
	}
	reportPerRound(b)
}

func BenchmarkDecreaseES_Pooled(b *testing.B) {
	in := estBenchInstance(b)
	pool := NewSamplePool(in.sampler(DiffusionIC), in.src, estBenchTheta, 0, rng.New(7))
	traj := benchTrajectory(b, in, pool)
	blocked := make([]bool, in.g.N())
	est := &estBackend{pooled: NewPooledEstimatorFromPool(pool, 0, DomLengauerTarjan), theta: estBenchTheta}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		greedyRounds(in, est, traj, blocked)
	}
	reportPerRound(b)
}

func BenchmarkDecreaseES_Incremental(b *testing.B) {
	in := estBenchInstance(b)
	pool := NewSamplePool(in.sampler(DiffusionIC), in.src, estBenchTheta, 0, rng.New(7))
	traj := benchTrajectory(b, in, pool)
	blocked := make([]bool, in.g.N())
	// One persistent estimator, like a warm session: the first iteration
	// pays the priming scan, every later iteration's round 0 diffs away the
	// previous iteration's blockers — the repeated-solve pattern the
	// serving layer runs. Priming amortizes out over b.N.
	incr := NewIncrementalPooledEstimatorFromPool(pool, 0, DomLengauerTarjan)
	est := &estBackend{incr: incr, theta: estBenchTheta}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		greedyRounds(in, est, traj, blocked)
	}
	reportPerRound(b)
	st := incr.Stats()
	b.ReportMetric(float64(st.SamplesReprocessed)/float64(st.Rounds), "dirty-samples/round")
}

// BenchmarkDecreaseES_IncrementalCompressed is the incremental workload on
// a compressed pool: the same dirty-only rounds, plus the per-dirty-sample
// varint decode. The gap to BenchmarkDecreaseES_Incremental is the ns price
// of the pool_bytes reduction.
func BenchmarkDecreaseES_IncrementalCompressed(b *testing.B) {
	in := estBenchInstance(b)
	pool := NewSamplePoolEnc(in.sampler(DiffusionIC), in.src, estBenchTheta, 0, rng.New(7), PoolCompressed)
	traj := benchTrajectory(b, in, pool.decompress(0))
	blocked := make([]bool, in.g.N())
	incr := NewIncrementalPooledEstimatorFromPool(pool, 0, DomLengauerTarjan)
	est := &estBackend{incr: incr, theta: estBenchTheta}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		greedyRounds(in, est, traj, blocked)
	}
	reportPerRound(b)
	st := incr.Stats()
	b.ReportMetric(float64(st.SamplesReprocessed)/float64(st.Rounds), "dirty-samples/round")
}
