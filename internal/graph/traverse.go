package graph

// This file provides deterministic (probability-ignoring) traversals over the
// full edge set. They power structural checks, dataset statistics, and the
// exact algorithms; randomized live-edge traversal lives in package cascade.

// BFS visits every vertex reachable from src in breadth-first order and
// calls visit for each, including src itself. Edges are followed regardless
// of probability (probability 0 edges are still structural edges).
func (g *Graph) BFS(src V, visit func(V)) {
	seen := make([]bool, g.n)
	queue := make([]V, 0, 64)
	seen[src] = true
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		visit(u)
		for _, v := range g.OutNeighbors(u) {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
}

// Reachable returns the set of vertices reachable from src (including src)
// as a boolean slice of length N.
func (g *Graph) Reachable(src V) []bool {
	seen := make([]bool, g.n)
	g.reachInto(src, seen, nil)
	return seen
}

// ReachableFrom returns the set of vertices reachable from any vertex in
// srcs, as a boolean slice of length N.
func (g *Graph) ReachableFrom(srcs []V) []bool {
	seen := make([]bool, g.n)
	var queue []V
	for _, s := range srcs {
		if !seen[s] {
			seen[s] = true
			queue = append(queue, s)
		}
	}
	g.drain(seen, queue)
	return seen
}

// ReachableCount returns the number of vertices reachable from src,
// including src.
func (g *Graph) ReachableCount(src V) int {
	seen := make([]bool, g.n)
	return g.reachInto(src, seen, nil)
}

// ReachableCountBlocked returns the number of vertices reachable from src
// when traversal may not enter vertices with blocked[v] set. If src itself is
// blocked the count is 0. This is σ(s, G[V\B]) from the paper.
func (g *Graph) ReachableCountBlocked(src V, blocked []bool) int {
	if blocked != nil && blocked[src] {
		return 0
	}
	seen := make([]bool, g.n)
	return g.reachInto(src, seen, blocked)
}

// reachInto marks vertices reachable from src in seen, skipping blocked
// vertices, and returns the count marked.
func (g *Graph) reachInto(src V, seen, blocked []bool) int {
	seen[src] = true
	return 1 + g.drainCount(seen, []V{src}, blocked)
}

// drain expands the queue until empty, marking seen.
func (g *Graph) drain(seen []bool, queue []V) {
	g.drainCount(seen, queue, nil)
}

// drainCount expands the queue until empty and returns how many new vertices
// were marked beyond those already in the queue.
func (g *Graph) drainCount(seen []bool, queue []V, blocked []bool) int {
	count := 0
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, v := range g.OutNeighbors(u) {
			if seen[v] || (blocked != nil && blocked[v]) {
				continue
			}
			seen[v] = true
			count++
			queue = append(queue, v)
		}
	}
	return count
}

// DFSPostorder visits all vertices reachable from src in depth-first
// postorder. It is iterative, so deep graphs cannot overflow the stack.
func (g *Graph) DFSPostorder(src V, visit func(V)) {
	seen := make([]bool, g.n)
	type frame struct {
		v   V
		idx int
	}
	stack := []frame{{v: src}}
	seen[src] = true
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		nbrs := g.OutNeighbors(top.v)
		advanced := false
		for top.idx < len(nbrs) {
			w := nbrs[top.idx]
			top.idx++
			if !seen[w] {
				seen[w] = true
				stack = append(stack, frame{v: w})
				advanced = true
				break
			}
		}
		if !advanced && top.idx >= len(nbrs) {
			visit(top.v)
			stack = stack[:len(stack)-1]
		}
	}
}

// IsDAG reports whether the graph has no directed cycle.
func (g *Graph) IsDAG() bool {
	indeg := make([]int32, g.n)
	for v := V(0); int(v) < g.n; v++ {
		indeg[v] = int32(g.InDegree(v))
	}
	queue := make([]V, 0, g.n)
	for v := V(0); int(v) < g.n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	processed := 0
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		processed++
		for _, v := range g.OutNeighbors(u) {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	return processed == g.n
}
