package service

import (
	"time"

	"github.com/imin-dev/imin/internal/obs"
)

// serverMetrics is the single source of runtime counters: both GET /stats
// and GET /metrics read these instruments, so the two views cannot drift.
// Event-driven instruments live here; state that another component already
// tracks (registry size, session-cache counters, store totals) is exported
// through Func instruments registered in registerDerived, reading the same
// sources /stats reports.
type serverMetrics struct {
	reg *obs.Registry

	// HTTP surface.
	httpRequests *obs.CounterVec // route, method, code
	httpSeconds  *obs.HistogramVec
	requestIDs   *obs.Counter

	// Solve path.
	solveSeconds  *obs.HistogramVec // model, warm, encoding
	batchItems    *obs.Histogram
	queueWait     *obs.HistogramVec // queue = session | slot
	inFlight      *obs.Gauge
	sheds         *obs.Counter
	roundSeconds  *obs.Histogram
	rounds        *obs.CounterVec // phase = select | replace
	dirtySamples  *obs.Counter
	stolenSamples *obs.Counter

	// Mutation / repair path.
	mutateSeconds    *obs.Histogram
	repairSeconds    *obs.Histogram
	sessionsAdvanced *obs.Counter
	sessionsReset    *obs.Counter
	poolsRepaired    *obs.Counter
	poolsDropped     *obs.Counter
	samplesRedrawn   *obs.Counter
	samplesKept      *obs.Counter

	// Robustness.
	panics         *obs.Counter
	degradedEnters *obs.Counter
	selfHeals      *obs.Counter

	// Flight recorder: per-solve cost model and SLO watchdogs.
	costSeconds    *obs.HistogramVec // phase = queue_session | queue_slot | migrate | solve | eval
	costSamples    *obs.HistogramVec // kind = drawn | dirty | stolen | redrawn
	sloBreaches    *obs.CounterVec   // route = solve | mutate
	bundles        *obs.Counter
	bundleErrors   *obs.Counter
	bundlesSkipped *obs.Counter
}

// sampleCountBuckets spans the sample volumes one solve can touch: from a
// handful of dirty samples on an incremental round to the ~1e7 fresh draws
// of a cold high-theta pool.
var sampleCountBuckets = []float64{1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &serverMetrics{reg: reg}
	m.httpRequests = reg.CounterVec("imind_http_requests_total",
		"HTTP requests served, by route pattern, method and status code.",
		"route", "method", "code")
	m.httpSeconds = reg.HistogramVec("imind_http_request_seconds",
		"HTTP request latency by route pattern.", obs.DefTimeBuckets, "route")
	m.requestIDs = reg.Counter("imind_request_ids_generated_total",
		"Request IDs generated server-side (requests without X-Request-Id).")

	m.solveSeconds = reg.HistogramVec("imind_solve_seconds",
		"Blocker-selection latency by diffusion model, warm/cold session, and pool encoding.",
		obs.DefTimeBuckets, "model", "warm", "encoding")
	m.batchItems = reg.Histogram("imind_batch_item_seconds",
		"Per-item latency inside solve-batch requests.", obs.DefTimeBuckets)
	m.queueWait = reg.HistogramVec("imind_queue_wait_seconds",
		"Admission-queue wait before a solve: the per-graph session queue and the bounded solve pool.",
		obs.DefTimeBuckets, "queue")
	m.inFlight = reg.Gauge("imind_solves_in_flight",
		"Solves currently holding a slot of the bounded solve pool.")
	m.sheds = reg.Counter("imind_sheds_total",
		"Requests shed with 429 because an admission-queue wait exceeded the bound.")
	m.roundSeconds = reg.Histogram("imind_solve_round_seconds",
		"Latency of one greedy round (AdvancedGreedy / GreedyReplace).", obs.DefTimeBuckets)
	m.rounds = reg.CounterVec("imind_solve_rounds_total",
		"Greedy rounds run, by phase (select = argmax selection, replace = GreedyReplace's replacement pass).",
		"phase")
	m.dirtySamples = reg.Counter("imind_solve_dirty_samples_total",
		"Live-edge samples processed by solve rounds: reprocessed dirty samples (incremental pools) or freshly drawn ones.")
	m.stolenSamples = reg.Counter("imind_solve_stolen_samples_total",
		"Dirty samples a work-stealing estimator shard took from a neighbor during solve rounds.")

	m.mutateSeconds = reg.Histogram("imind_mutate_commit_seconds",
		"Mutation-batch commit latency, including the write-ahead-log append.", obs.DefTimeBuckets)
	m.repairSeconds = reg.Histogram("imind_session_repair_seconds",
		"Warm-session migration latency after a mutation (pool repair or reset).", obs.DefTimeBuckets)
	m.sessionsAdvanced = reg.Counter("imind_sessions_advanced_total",
		"Warm sessions migrated incrementally across a mutation (pools repaired in place).")
	m.sessionsReset = reg.Counter("imind_sessions_reset_total",
		"Warm sessions reset because the mutation changelog no longer reached their epoch.")
	m.poolsRepaired = reg.Counter("imind_pools_repaired_total",
		"Cached sample pools repaired in place across mutations.")
	m.poolsDropped = reg.Counter("imind_pools_dropped_total",
		"Cached sample pools discarded during migration.")
	m.samplesRedrawn = reg.Counter("imind_samples_redrawn_total",
		"Samples redrawn while repairing cached pools.")
	m.samplesKept = reg.Counter("imind_samples_kept_total",
		"Samples kept untouched while repairing cached pools.")

	m.panics = reg.Counter("imind_panics_total",
		"Handler panics recovered by the middleware (each one a 500 instead of a dead daemon).")
	m.degradedEnters = reg.Counter("imind_degraded_enters_total",
		"Graph transitions into degraded read-only mode after a persistence failure.")
	m.selfHeals = reg.Counter("imind_self_heals_total",
		"Degraded graphs restored to writable by a self-heal checkpoint.")

	m.costSeconds = reg.HistogramVec("imind_solve_cost_seconds",
		"Per-solve cost model: wall time attributed to each phase (queue_session, queue_slot, migrate, solve, eval).",
		obs.DefTimeBuckets, "phase")
	m.costSamples = reg.HistogramVec("imind_solve_cost_samples",
		"Per-solve cost model: sample counts by kind (drawn, dirty, stolen, redrawn).",
		sampleCountBuckets, "kind")
	m.sloBreaches = reg.CounterVec("imind_slo_breaches_total",
		"Latency-objective breaches, by route (solve = -slo-solve-ms, mutate = -slo-mutate-ms).",
		"route")
	m.bundles = reg.Counter("imind_diag_bundles_total",
		"Diagnostic bundles captured by the flight recorder.")
	m.bundleErrors = reg.Counter("imind_diag_bundle_errors_total",
		"Diagnostic bundle captures that failed.")
	m.bundlesSkipped = reg.Counter("imind_diag_bundles_skipped_total",
		"Diagnostic bundle captures suppressed by the cooldown or an in-flight capture.")
	return m
}

// registerDerived exports state owned by other components — the graph
// registry, the session cache, the durable store — as Func instruments
// reading exactly the sources handleStats reports.
func (m *serverMetrics) registerDerived(s *Server) {
	reg := m.reg
	reg.GaugeFunc("imind_graphs",
		"Registered graphs.", func() float64 { return float64(s.registry.Len()) })
	reg.GaugeFunc("imind_degraded_graphs",
		"Graphs currently in degraded read-only mode.",
		func() float64 { return float64(len(s.degradedGraphs())) })
	reg.GaugeFunc("imind_uptime_seconds",
		"Seconds since the server was constructed.",
		func() float64 { return time.Since(s.started).Seconds() })
	reg.GaugeFunc("imind_max_concurrent_solves",
		"Capacity of the bounded solve pool.",
		func() float64 { return float64(s.cfg.MaxConcurrent) })

	reg.GaugeFunc("imind_sessions_cached",
		"Warm sessions currently cached.",
		func() float64 { return float64(s.sessions.Stats().Size) })
	reg.GaugeFunc("imind_session_pool_bytes",
		"Summed memory of all cached sample pools.",
		func() float64 { return float64(s.sessions.Stats().PoolBytes) })
	reg.CounterFunc("imind_session_hits_total",
		"Solve requests that found a warm session.",
		func() float64 { return float64(s.sessions.Stats().Hits) })
	reg.CounterFunc("imind_session_misses_total",
		"Solve requests that had to build a session.",
		func() float64 { return float64(s.sessions.Stats().Misses) })
	reg.CounterFunc("imind_session_evictions_total",
		"Warm sessions evicted from the LRU.",
		func() float64 { return float64(s.sessions.Stats().Evictions) })
	reg.CounterFunc("imind_session_pool_builds_total",
		"ReuseSamples solves that drew a fresh pool.",
		func() float64 { return float64(s.sessions.Stats().PoolBuilds) })
	reg.CounterFunc("imind_session_pool_reuses_total",
		"ReuseSamples solves answered from a warm pool.",
		func() float64 { return float64(s.sessions.Stats().PoolReuses) })

	reg.CounterFunc("imind_mutation_batches_total",
		"Mutation batches committed across all graphs.",
		func() float64 { b, _, _ := s.registry.MutationTotals(); return float64(b) })
	reg.CounterFunc("imind_mutations_total",
		"Individual mutations committed across all graphs.",
		func() float64 { _, mu, _ := s.registry.MutationTotals(); return float64(mu) })
	reg.CounterFunc("imind_compactions_total",
		"Delta-overlay compactions across all graphs.",
		func() float64 { _, _, c := s.registry.MutationTotals(); return float64(c) })

	if st := s.cfg.Store; st != nil {
		reg.CounterFunc("imind_wal_appends_total",
			"Write-ahead-log appends.", func() float64 { return float64(st.Stats().WALAppends) })
		reg.CounterFunc("imind_wal_bytes_total",
			"Bytes appended to write-ahead logs.", func() float64 { return float64(st.Stats().WALBytes) })
		reg.CounterFunc("imind_wal_fsyncs_total",
			"Write-ahead-log fsyncs.", func() float64 { return float64(st.Stats().WALFsyncs) })
		reg.CounterFunc("imind_checkpoints_total",
			"Snapshot+truncate checkpoint cycles completed.",
			func() float64 { return float64(st.Stats().Checkpoints) })
		reg.CounterFunc("imind_checkpoint_failures_total",
			"Checkpoint attempts that failed.",
			func() float64 { return float64(st.Stats().CheckpointFailures) })
		reg.CounterFunc("imind_recovered_graphs_total",
			"Graphs restored from disk at startup.",
			func() float64 { return float64(st.Stats().RecoveredGraphs) })
		reg.CounterFunc("imind_replayed_batches_total",
			"WAL batches replayed during startup recovery.",
			func() float64 { return float64(st.Stats().ReplayedBatches) })
		reg.CounterFunc("imind_truncated_tails_total",
			"WALs whose torn or corrupt tail was cut off during recovery.",
			func() float64 { return float64(st.Stats().TruncatedTails) })
	}
}

// warmLabel renders the session-cache outcome for the solve histogram.
func warmLabel(hit bool) string {
	if hit {
		return "warm"
	}
	return "cold"
}

// encodingLabel renders the pool-encoding label: reuse_samples solves carry
// their arena layout, everything else samples fresh ("none").
func encodingLabel(reuse bool, enc string) string {
	if !reuse {
		return "none"
	}
	if enc == "" {
		return "flat"
	}
	return enc
}
