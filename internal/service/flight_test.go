package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/imin-dev/imin/internal/diag"
)

// solveOnce posts one small deterministic solve against g1.
func solveOnce(t *testing.T, baseURL string) SolveResponse {
	t.Helper()
	var resp SolveResponse
	req := SolveRequest{
		Seeds: []int{5, 9}, Budget: 3, Algorithm: "advanced-greedy",
		Theta: 300, Seed: 11, EvalRounds: -1,
	}
	if code, body := postJSON(t, baseURL+"/graphs/g1/solve", req, &resp); code != http.StatusOK {
		t.Fatalf("solve: status %d, body %s", code, body)
	}
	return resp
}

// TestSolveResponseCarriesCost checks the tentpole's cost model surface:
// every solve response carries a cost block whose phases and counters are
// populated and internally consistent.
func TestSolveResponseCarriesCost(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerTestGraphs(t, ts)

	resp := solveOnce(t, ts.URL)
	c := resp.Cost
	if c == nil {
		t.Fatal("solve response has no cost block")
	}
	if c.Rounds == 0 || c.RoundNS <= 0 {
		t.Fatalf("cost rounds not accounted: %+v", c)
	}
	if c.SolveNS <= 0 || c.TotalNS < c.SolveNS {
		t.Fatalf("cost timings inconsistent: solve %d total %d", c.SolveNS, c.TotalNS)
	}
	if c.SamplesDrawn <= 0 {
		t.Fatalf("cost samples_drawn = %d", c.SamplesDrawn)
	}
	if c.QueueSessionNS < 0 || c.QueueSlotNS < 0 {
		t.Fatalf("negative queue waits: %+v", c)
	}

	// The cost histograms saw the same solve.
	_, vals := scrapeMetrics(t, ts.URL)
	if n := vals[`imind_solve_cost_seconds_count{phase="solve"}`]; n != 1 {
		t.Fatalf("cost histogram count = %v, want 1", n)
	}
	if n := vals[`imind_solve_cost_samples_count{kind="drawn"}`]; n != 1 {
		t.Fatalf("cost samples histogram count = %v, want 1", n)
	}
}

// TestSLOBreachCapturesBundle is the acceptance e2e: a solve under an
// unmeetable -slo-solve-ms must produce a diagnostic bundle containing the
// offending trace, the goroutine and heap profiles and a metrics snapshot,
// served via GET /debug/bundles — even though the client never asked for a
// trace and the trace ring is on by default.
func TestSLOBreachCapturesBundle(t *testing.T) {
	_, ts := newTestServer(t, Config{
		SLOSolve:     time.Nanosecond,
		DiagDir:      t.TempDir(),
		DiagCooldown: -1,
		TraceRing:    8,
	})
	registerTestGraphs(t, ts)
	solveOnce(t, ts.URL)

	// The capture runs on a background goroutine; poll for it.
	var bundles BundlesResponse
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := getJSONBody(t, ts.URL+"/debug/bundles", &bundles)
		if code != http.StatusOK {
			t.Fatalf("GET /debug/bundles: status %d, body %s", code, body)
		}
		if len(bundles.Bundles) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(bundles.Bundles) != 1 {
		t.Fatalf("bundles = %+v, want exactly one", bundles.Bundles)
	}
	info := bundles.Bundles[0]
	if info.Reason != "slo_solve" {
		t.Fatalf("bundle reason = %q, want slo_solve", info.Reason)
	}

	resp, err := http.Get(ts.URL + "/debug/bundles/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET bundle: status %d", resp.StatusCode)
	}
	var b diag.Bundle
	if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
		t.Fatalf("decoding bundle: %v", err)
	}
	if b.Trigger.Reason != "slo_solve" || b.Trigger.Route != "solve" || b.Trigger.Graph != "g1" {
		t.Fatalf("trigger = %+v", b.Trigger)
	}
	if b.Trigger.RequestID == "" || b.Trigger.ElapsedMS <= 0 {
		t.Fatalf("trigger missing request id or elapsed: %+v", b.Trigger)
	}
	if b.Trace == nil || b.Trace.Op != "solve" {
		t.Fatalf("offending trace missing: %+v", b.Trace)
	}
	if len(b.RecentTraces) == 0 {
		t.Fatal("trace ring missing from bundle")
	}
	if !strings.Contains(b.Goroutine, "goroutine") {
		t.Fatal("goroutine profile missing")
	}
	if b.Heap == "" {
		t.Fatal("heap profile missing")
	}
	if !strings.Contains(b.Metrics, "imind_") {
		t.Fatal("metrics snapshot missing")
	}

	// The breach is also visible on the metrics surface.
	_, vals := scrapeMetrics(t, ts.URL)
	if n := vals[`imind_slo_breaches_total{route="solve"}`]; n != 1 {
		t.Fatalf("slo breaches = %v, want 1", n)
	}
	if n := sumSamples(vals, `imind_diag_bundles_total`); n != 1 {
		t.Fatalf("bundles captured = %v, want 1", n)
	}
}

// TestBundlesDisabledWithoutDiagDir: without -diag-dir the endpoints are
// 404 and an SLO breach still logs/counts but captures nothing.
func TestBundlesDisabledWithoutDiagDir(t *testing.T) {
	_, ts := newTestServer(t, Config{SLOSolve: time.Nanosecond})
	registerTestGraphs(t, ts)
	solveOnce(t, ts.URL)

	resp, err := http.Get(ts.URL + "/debug/bundles")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /debug/bundles without -diag-dir: status %d, want 404", resp.StatusCode)
	}
	_, vals := scrapeMetrics(t, ts.URL)
	if n := vals[`imind_slo_breaches_total{route="solve"}`]; n != 1 {
		t.Fatalf("slo breaches = %v, want 1 (breach detection is independent of the recorder)", n)
	}
}

// TestTraceFilters exercises the /debug/traces query filters.
func TestTraceFilters(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceRing: 8})
	registerTestGraphs(t, ts)
	solveOnce(t, ts.URL)
	solveOnce(t, ts.URL)

	get := func(query string) (int, TracesResponse) {
		t.Helper()
		var tr TracesResponse
		resp, err := http.Get(ts.URL + "/debug/traces" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode, tr
	}

	if code, tr := get(""); code != http.StatusOK || len(tr.Traces) != 2 {
		t.Fatalf("unfiltered: code %d, %d traces", code, len(tr.Traces))
	}
	if code, tr := get("?route=solve"); code != http.StatusOK || len(tr.Traces) != 2 {
		t.Fatalf("route=solve: code %d, %d traces", code, len(tr.Traces))
	}
	if code, tr := get("?route=mutate"); code != http.StatusOK || len(tr.Traces) != 0 {
		t.Fatalf("route=mutate: code %d, %d traces, want 0", code, len(tr.Traces))
	}
	if code, tr := get("?min_duration_ms=0.000001"); code != http.StatusOK || len(tr.Traces) != 2 {
		t.Fatalf("tiny min_duration: code %d, %d traces", code, len(tr.Traces))
	}
	if code, tr := get(fmt.Sprintf("?min_duration_ms=%d", int64(time.Hour/time.Millisecond))); code != http.StatusOK || len(tr.Traces) != 0 {
		t.Fatalf("huge min_duration: code %d, %d traces, want 0", code, len(tr.Traces))
	}
	if code, _ := get("?min_duration_ms=banana"); code != http.StatusBadRequest {
		t.Fatalf("bad min_duration: code %d, want 400", code)
	}
	if code, _ := get("?min_duration_ms=-1"); code != http.StatusBadRequest {
		t.Fatalf("negative min_duration: code %d, want 400", code)
	}
}

// TestCostBitNeutralThroughService asserts the acceptance bar end to end:
// the same solve answered by a server with the full flight recorder armed
// and by a bare server selects identical blockers.
func TestCostBitNeutralThroughService(t *testing.T) {
	_, plain := newTestServer(t, Config{TraceRing: -1})
	registerTestGraphs(t, plain)
	base := solveOnce(t, plain.URL)

	_, armed := newTestServer(t, Config{
		SLOSolve:     time.Nanosecond,
		DiagDir:      t.TempDir(),
		DiagCooldown: -1,
		TraceRing:    8,
	})
	registerTestGraphs(t, armed)
	got := solveOnce(t, armed.URL)

	if len(base.Blockers) == 0 {
		t.Fatal("baseline solve selected no blockers")
	}
	if fmt.Sprint(base.Blockers) != fmt.Sprint(got.Blockers) {
		t.Fatalf("blockers diverge with flight recorder armed: %v vs %v", base.Blockers, got.Blockers)
	}
}
