package dominator

import (
	"testing"
	"testing/quick"

	"github.com/imin-dev/imin/internal/rng"
)

// build constructs a FlowGraph from an edge list over n vertices.
func build(n int, edges [][2]int32) *FlowGraph {
	fg := &FlowGraph{N: n}
	fg.OutStart = make([]int32, n+1)
	fg.InStart = make([]int32, n+1)
	for _, e := range edges {
		fg.OutStart[e[0]+1]++
		fg.InStart[e[1]+1]++
	}
	for i := 0; i < n; i++ {
		fg.OutStart[i+1] += fg.OutStart[i]
		fg.InStart[i+1] += fg.InStart[i]
	}
	fg.OutTo = make([]int32, len(edges))
	fg.InTo = make([]int32, len(edges))
	fillO := make([]int32, n)
	fillI := make([]int32, n)
	for _, e := range edges {
		fg.OutTo[fg.OutStart[e[0]]+fillO[e[0]]] = e[1]
		fillO[e[0]]++
		fg.InTo[fg.InStart[e[1]]+fillI[e[1]]] = e[0]
		fillI[e[1]]++
	}
	return fg
}

// toyFlow is the Figure 1 graph's structure (ids: v(i+1) = i).
func toyFlow() *FlowGraph {
	return build(9, [][2]int32{
		{0, 1}, {0, 3},
		{1, 4}, {3, 4},
		{4, 2}, {4, 5}, {4, 8},
		{4, 7}, {8, 7},
		{7, 6},
	})
}

func TestToyDominatorTree(t *testing.T) {
	fg := toyFlow()
	want := []int32{
		0: -1,
		1: 0, 3: 0, 4: 0, // v2, v4, v5 are children of the seed
		2: 4, 5: 4, 8: 4, // v3, v6, v9 under v5
		7: 4, // v8 under v5 (reachable via v5 directly and via v9)
		6: 7, // v7 under v8
	}
	for name, algo := range map[string]func(*Workspace, *FlowGraph, int32) *Tree{
		"LengauerTarjan": (*Workspace).LengauerTarjan,
		"SNCA":           (*Workspace).SNCA,
	} {
		ws := NewWorkspace(fg.N)
		tr := algo(ws, fg, 0)
		if tr.Reached != 9 {
			t.Errorf("%s: reached %d, want 9", name, tr.Reached)
		}
		for v, w := range want {
			if tr.Idom[v] != w {
				t.Errorf("%s: idom(%d) = %d, want %d", name, v, tr.Idom[v], w)
			}
		}
	}
}

func TestToySubtreeSizes(t *testing.T) {
	fg := toyFlow()
	ws := NewWorkspace(fg.N)
	tr := ws.LengauerTarjan(fg, 0)
	sizes := make([]int32, fg.N)
	ws.SubtreeSizes(tr, sizes)
	// Full structural graph (all edges live): v5's subtree is
	// {v5,v3,v6,v9,v8,v7} = 6; v8's is {v8,v7} = 2; leaves are 1; root 9.
	want := []int32{0: 9, 1: 1, 3: 1, 4: 6, 2: 1, 5: 1, 8: 1, 7: 2, 6: 1}
	for v, w := range want {
		if sizes[v] != w {
			t.Errorf("subtree(%d) = %d, want %d", v, sizes[v], w)
		}
	}
	naive := NaiveSubtreeSizes(fg, 0)
	for v := range naive {
		if naive[v] != sizes[v] {
			t.Errorf("naive subtree(%d) = %d, LT says %d", v, naive[v], sizes[v])
		}
	}
}

// TestLengauerTarjanPaperExample uses the example flow graph from the
// original Lengauer–Tarjan paper (Fig. 1 of [53]), a 13-vertex irreducible
// graph with well-known immediate dominators.
func TestLengauerTarjanPaperExample(t *testing.T) {
	// Vertices: R=0 A=1 B=2 C=3 D=4 E=5 F=6 G=7 H=8 I=9 J=10 K=11 L=12
	edges := [][2]int32{
		{0, 1}, {0, 2}, {0, 3},
		{1, 4},
		{2, 1}, {2, 4}, {2, 5},
		{3, 6}, {3, 7},
		{4, 12},
		{5, 8},
		{6, 9},
		{7, 9}, {7, 10},
		{8, 5}, {8, 11},
		{9, 11},
		{10, 9},
		{11, 9}, {11, 0},
		{12, 8},
	}
	fg := build(13, edges)
	// Known dominator tree (R dominates everything; see LT79 §1).
	want := []int32{
		0: -1,
		1: 0, 2: 0, 3: 0, 4: 0, 5: 0, 8: 0, 9: 0, 11: 0, 12: 4,
		6: 3, 7: 3, 10: 7,
	}
	for name, algo := range map[string]func(*Workspace, *FlowGraph, int32) *Tree{
		"LengauerTarjan": (*Workspace).LengauerTarjan,
		"SNCA":           (*Workspace).SNCA,
	} {
		ws := NewWorkspace(fg.N)
		tr := algo(ws, fg, 0)
		for v, w := range want {
			if tr.Idom[v] != w {
				t.Errorf("%s: idom(%d) = %d, want %d", name, v, tr.Idom[v], w)
			}
		}
		// Cross-check against the naive oracle too.
		naive := Naive(fg, 0)
		for v := range naive {
			if naive[v] != tr.Idom[v] {
				t.Errorf("%s disagrees with naive at %d: %d vs %d", name, v, tr.Idom[v], naive[v])
			}
		}
	}
}

func TestSingleVertex(t *testing.T) {
	fg := build(1, nil)
	ws := NewWorkspace(1)
	tr := ws.LengauerTarjan(fg, 0)
	if tr.Reached != 1 || tr.Idom[0] != -1 {
		t.Fatalf("single vertex: reached=%d idom=%d", tr.Reached, tr.Idom[0])
	}
	sizes := make([]int32, 1)
	ws.SubtreeSizes(tr, sizes)
	if sizes[0] != 1 {
		t.Fatalf("single vertex subtree = %d", sizes[0])
	}
}

func TestUnreachableVertices(t *testing.T) {
	// 0 -> 1; 2 -> 3 unreachable from 0.
	fg := build(4, [][2]int32{{0, 1}, {2, 3}, {3, 1}})
	ws := NewWorkspace(4)
	tr := ws.LengauerTarjan(fg, 0)
	if tr.Reached != 2 {
		t.Fatalf("reached = %d, want 2", tr.Reached)
	}
	if tr.Idom[1] != 0 {
		t.Errorf("idom(1) = %d, want 0 (pred 3 is unreachable and must be ignored)", tr.Idom[1])
	}
	if tr.Idom[2] != -1 || tr.Idom[3] != -1 {
		t.Error("unreachable vertices must have idom -1")
	}
	sizes := make([]int32, 4)
	ws.SubtreeSizes(tr, sizes)
	if sizes[2] != 0 || sizes[3] != 0 {
		t.Error("unreachable vertices must have subtree size 0")
	}
	if sizes[0] != 2 || sizes[1] != 1 {
		t.Errorf("sizes = %v", sizes)
	}
}

func TestCycle(t *testing.T) {
	// 0 -> 1 -> 2 -> 1 (cycle back); idom(2)=1, idom(1)=0.
	fg := build(3, [][2]int32{{0, 1}, {1, 2}, {2, 1}})
	ws := NewWorkspace(3)
	tr := ws.SNCA(fg, 0)
	if tr.Idom[1] != 0 || tr.Idom[2] != 1 {
		t.Fatalf("cycle idoms = %v", tr.Idom[:3])
	}
}

func TestDiamond(t *testing.T) {
	// Classic diamond: 0->1, 0->2, 1->3, 2->3. idom(3) = 0.
	fg := build(4, [][2]int32{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	ws := NewWorkspace(4)
	tr := ws.LengauerTarjan(fg, 0)
	if tr.Idom[3] != 0 {
		t.Fatalf("diamond idom(3) = %d, want 0", tr.Idom[3])
	}
	sizes := make([]int32, 4)
	ws.SubtreeSizes(tr, sizes)
	if sizes[1] != 1 || sizes[2] != 1 || sizes[0] != 4 {
		t.Fatalf("diamond sizes = %v", sizes)
	}
}

func TestLongPathDeepRecursionSafe(t *testing.T) {
	// A path of 200k vertices exercises the iterative DFS and compression:
	// a recursive implementation would overflow the stack.
	n := 200000
	edges := make([][2]int32, n-1)
	for i := 0; i < n-1; i++ {
		edges[i] = [2]int32{int32(i), int32(i + 1)}
	}
	fg := build(n, edges)
	ws := NewWorkspace(n)
	tr := ws.LengauerTarjan(fg, 0)
	for v := 1; v < n; v++ {
		if tr.Idom[v] != int32(v-1) {
			t.Fatalf("path idom(%d) = %d", v, tr.Idom[v])
		}
	}
	sizes := make([]int32, n)
	ws.SubtreeSizes(tr, sizes)
	if sizes[0] != int32(n) || sizes[n-1] != 1 {
		t.Fatalf("path sizes wrong: root=%d leaf=%d", sizes[0], sizes[n-1])
	}
}

// randomFlow builds a random digraph for property tests.
func randomFlow(r *rng.Source, n, m int) *FlowGraph {
	edges := make([][2]int32, 0, m)
	for i := 0; i < m; i++ {
		u, v := int32(r.Intn(n)), int32(r.Intn(n))
		if u != v {
			edges = append(edges, [2]int32{u, v})
		}
	}
	return build(n, edges)
}

// Property: Lengauer–Tarjan, SNCA and the naive oracle agree on random
// digraphs, including graphs with cycles and unreachable parts.
func TestAlgorithmsAgreeProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw%40) + 2
		m := int(mRaw%120) + 1
		r := rng.New(seed)
		fg := randomFlow(r, n, m)
		ws1 := NewWorkspace(n)
		ws2 := NewWorkspace(n)
		lt := ws1.LengauerTarjan(fg, 0)
		sn := ws2.SNCA(fg, 0)
		naive := Naive(fg, 0)
		for v := 0; v < n; v++ {
			if lt.Idom[v] != naive[v] || sn.Idom[v] != naive[v] {
				t.Logf("seed=%d n=%d m=%d v=%d: LT=%d SNCA=%d naive=%d",
					seed, n, m, v, lt.Idom[v], sn.Idom[v], naive[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: subtree sizes from the dominator tree equal the direct
// definition σ→v (number of vertices losing reachability when v is removed).
func TestSubtreeSizesMatchDefinitionProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw%30) + 2
		m := int(mRaw%90) + 1
		r := rng.New(seed)
		fg := randomFlow(r, n, m)
		ws := NewWorkspace(n)
		tr := ws.LengauerTarjan(fg, 0)
		sizes := make([]int32, n)
		ws.SubtreeSizes(tr, sizes)
		naive := NaiveSubtreeSizes(fg, 0)
		for v := 0; v < n; v++ {
			if sizes[v] != naive[v] {
				t.Logf("seed=%d n=%d m=%d v=%d: tree=%d naive=%d", seed, n, m, v, sizes[v], naive[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: workspace reuse across different graphs gives identical results
// to fresh workspaces (no state leaks).
func TestWorkspaceReuseProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		shared := NewWorkspace(8)
		for round := 0; round < 10; round++ {
			n := r.Intn(30) + 2
			fg := randomFlow(r, n, r.Intn(80)+1)
			reused := shared.LengauerTarjan(fg, 0)
			reusedIdom := append([]int32(nil), reused.Idom[:n]...)
			fresh := NewWorkspace(n).LengauerTarjan(fg, 0)
			for v := 0; v < n; v++ {
				if reusedIdom[v] != fresh.Idom[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLengauerTarjanRandom(b *testing.B) {
	r := rng.New(1)
	fg := randomFlow(r, 10000, 50000)
	ws := NewWorkspace(fg.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.LengauerTarjan(fg, 0)
	}
}

func BenchmarkSNCARandom(b *testing.B) {
	r := rng.New(1)
	fg := randomFlow(r, 10000, 50000)
	ws := NewWorkspace(fg.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.SNCA(fg, 0)
	}
}
