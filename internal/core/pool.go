package core

import (
	"runtime"
	"sync"

	"github.com/imin-dev/imin/internal/cascade"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// SamplePool holds θ live-edge samples of one (graph, source, diffusion)
// triple in a single contiguous arena, plus a per-vertex inverted index.
//
// The arena replaces the ~3θ separate heap slices of the original pooled
// storage with five flat backing arrays and per-sample offsets: sample
// construction stops paying one allocation trio per sample, the garbage
// collector sees O(1) pointers instead of O(θ), and the per-round scans of
// PooledEstimator / IncrementalPooledEstimator walk memory sequentially.
//
// The inverted index answers "which samples contain vertex v" in O(1) + the
// answer size — the sparsity that IncrementalPooledEstimator exploits:
// blocking v can only change the dominator computation of samples whose
// reachable region contains v.
//
// A pool is immutable after construction and safe for concurrent readers;
// it can back any number of estimators (each estimator carries its own
// mutable state).
type SamplePool struct {
	g   *graph.Graph
	src graph.V

	// base is a copy of the rng source the pool was drawn from: sample i is
	// the stream base.Split(i). Split never advances the parent, so the copy
	// stays forever at the construction-time state — which is what lets
	// Repair redraw any single sample bit-identically to a from-scratch pool
	// at the same seed.
	base rng.Source

	// Arena layout: sample i's vertex list (local id 0 = source, values are
	// original-graph ids) is vertOrig[vertStart[i]:vertStart[i+1]]; its
	// out-CSR offsets (relative to the sample's own edge slice) are the
	// K_i+1 entries of csrStart beginning at vertStart[i]+i; its live-edge
	// targets, in sample-local ids, are edgeTo[edgeStart[i]:edgeStart[i+1]].
	// The predecessor CSR (csrInStart/inFrom, same layout) is kept too: a
	// sample containing no blocked vertex can then feed the dominator
	// computation directly from the arena, skipping the filter BFS and CSR
	// rebuild — the whole first (priming) round of the incremental
	// estimator runs on that path.
	vertStart  []int64
	edgeStart  []int64
	vertOrig   []graph.V
	csrStart   []int32
	edgeTo     []int32
	csrInStart []int32
	inFrom     []int32

	// Inverted index in CSR form: the ids of the samples whose vertex set
	// contains v are idxSample[idxStart[v]:idxStart[v+1]], ascending. Every
	// sample contains the source, so idxSample holds one entry per
	// (sample, reached vertex) pair — exactly len(vertOrig) entries.
	idxStart  []int64
	idxSample []int32

	// Compressed layout (enc == PoolCompressed; see PoolEncoding).
	// csrInStart/inFrom and idxStart/idxSample above are nil: the in-CSR is
	// derived per view from the out-CSR, and the inverted index lives as
	// per-vertex delta-varint runs of encIdx at encIdxOff[v]. The offset
	// arrays are narrowed to their int32 twins when the totals fit (the
	// per-vertex encIdxOff is O(n) and would otherwise dominate a small
	// pool's footprint) — read them only through sampleVertStart/
	// sampleEdgeStart/encIdxRange.
	enc         PoolEncoding
	vertStart32 []int32
	edgeStart32 []int32
	encIdx      []byte
	encIdxOff   []int64
	encIdxOff32 []int32
}

// sampleView is a borrowed, zero-copy view of one pooled sample in the
// compact local-id form produced by cascade samplers (local 0 = source).
type sampleView struct {
	orig     []graph.V
	outStart []int32
	outTo    []int32
	inStart  []int32
	inTo     []int32

	// Derivation scratch for compressed pools: view() rebuilds the unstored
	// in-CSR into this owned buffer and points inStart/inTo at it. Flat
	// pools borrow arena memory directly and leave it nil. Each worker
	// holds its own persistent sampleView, so the buffer amortizes to zero
	// allocations per round once grown to the largest sample seen.
	i32Buf []int32
}

// memoryBytes reports the view's owned derivation buffer (zero for views
// over flat pools, which borrow arena memory).
func (v *sampleView) memoryBytes() int64 {
	return int64(cap(v.i32Buf)) * 4
}

// poolWorkers resolves the worker count for pool construction and scans the
// same way the estimators do, so a pool built with Options.Workers w is
// bit-identical to the pre-arena pooled storage with the same w.
func poolWorkers(workers, theta int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > theta {
		workers = theta
	}
	return workers
}

// drawShard is one worker's private contiguous buffer of drawn samples.
// NewSamplePool and Repair both stitch their arenas out of these, through
// the single appendSample body — the append order defines the arena byte
// layout, so sharing it is what keeps the two construction paths
// bit-identical by construction.
type drawShard struct {
	orig  []graph.V
	csr   []int32
	to    []int32
	inCSR []int32
	from  []int32
	ks    []int32 // per-sample vertex counts
	es    []int32 // per-sample edge counts
}

// appendSample copies one sampled graph into the shard buffers.
func (sh *drawShard) appendSample(sg *cascade.SampledGraph) {
	sh.orig = append(sh.orig, sg.Orig[:sg.K]...)
	sh.csr = append(sh.csr, sg.OutStart[:sg.K+1]...)
	sh.to = append(sh.to, sg.OutTo...)
	sh.inCSR = append(sh.inCSR, sg.InStart[:sg.K+1]...)
	sh.from = append(sh.from, sg.InTo...)
	sh.ks = append(sh.ks, int32(sg.K))
	sh.es = append(sh.es, int32(len(sg.OutTo)))
}

// NewSamplePool draws theta live-edge samples from the sampler into a fresh
// arena and builds the inverted index. workers <= 0 selects GOMAXPROCS. The
// pool content is deterministic in base alone: sample i is always drawn
// from the stream base.Split(i), regardless of the worker count, so pools
// built at different parallelism are byte-identical — the property that
// lets a warm session keep its cached pools when a request asks for a
// different worker count, and that makes ReuseSamples solves reproducible
// across machines with different core counts.
func NewSamplePool(sampler cascade.LiveSampler, src graph.V, theta, workers int, base *rng.Source) *SamplePool {
	workers = poolWorkers(workers, theta)

	// Each worker appends its range of samples into private contiguous
	// shards; the shards are then stitched into the final arena with one
	// parallel copy. Sampling dominates, the copy is one sequential pass.
	shards := make([]drawShard, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * theta / workers
		hi := (w + 1) * theta / workers
		wg.Add(1)
		go func(sh *drawShard, lo, hi int) {
			defer wg.Done()
			ws := sampler.NewWorkspace()
			for i := lo; i < hi; i++ {
				// Split reads the parent state without mutating it, so
				// concurrent per-sample derivation is race-free.
				sh.appendSample(sampler.Sample(src, nil, base.Split(uint64(i)), ws))
			}
		}(&shards[w], lo, hi)
	}
	wg.Wait()

	p := &SamplePool{
		g:         sampler.Graph(),
		src:       src,
		base:      *base,
		vertStart: make([]int64, theta+1),
		edgeStart: make([]int64, theta+1),
	}
	var tv, te int64
	i := 0
	for w := range shards {
		for j := range shards[w].ks {
			p.vertStart[i] = tv
			p.edgeStart[i] = te
			tv += int64(shards[w].ks[j])
			te += int64(shards[w].es[j])
			i++
		}
	}
	p.vertStart[theta] = tv
	p.edgeStart[theta] = te
	p.vertOrig = make([]graph.V, tv)
	p.csrStart = make([]int32, tv+int64(theta))
	p.edgeTo = make([]int32, te)
	p.csrInStart = make([]int32, tv+int64(theta))
	p.inFrom = make([]int32, te)
	for w := range shards {
		lo := w * theta / workers
		sh := &shards[w]
		wg.Add(1)
		go func(sh *drawShard, lo int) {
			defer wg.Done()
			vs, es := p.vertStart[lo], p.edgeStart[lo]
			copy(p.vertOrig[vs:], sh.orig)
			copy(p.csrStart[vs+int64(lo):], sh.csr)
			copy(p.edgeTo[es:], sh.to)
			copy(p.csrInStart[vs+int64(lo):], sh.inCSR)
			copy(p.inFrom[es:], sh.from)
		}(sh, lo)
	}
	wg.Wait()

	p.buildIndex(workers)
	return p
}

// NewSamplePoolEnc is NewSamplePool with an explicit arena layout. The pool
// is drawn flat (the draw path is shared, so the logical content is
// identical) and then converted, which keeps every encoding bit-identical
// in what it stores — only the bytes that store it differ.
func NewSamplePoolEnc(sampler cascade.LiveSampler, src graph.V, theta, workers int, base *rng.Source, enc PoolEncoding) *SamplePool {
	p := NewSamplePool(sampler, src, theta, workers, base)
	if enc == PoolCompressed {
		p.compress(workers)
	}
	return p
}

// buildIndex fills the vertex → sample-ids CSR by counting sort over the
// vertex arena. Sample ids come out ascending per vertex. The sort runs on
// the same worker ranges as sampling: worker w counts and fills the entries
// of its own sample range, offset by the counts of earlier workers, so the
// per-vertex ordering — ascending sample ids — is identical to the serial
// sort for every worker count.
func (p *SamplePool) buildIndex(workers int) {
	n := p.g.N()
	theta := p.Theta()
	if workers > theta {
		workers = theta
	}
	if workers < 1 {
		workers = 1
	}

	// Count per (worker, vertex): each worker scans only its sample range.
	counts := make([][]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*theta/workers, (w+1)*theta/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			c := make([]int64, n)
			for _, v := range p.vertOrig[p.vertStart[lo]:p.vertStart[hi]] {
				c[v]++
			}
			counts[w] = c
		}(w, lo, hi)
	}
	wg.Wait()

	// Prefix over vertices (and, inside each vertex, over workers): after
	// this pass counts[w][v] is the absolute write offset of worker w's
	// first entry for vertex v.
	p.idxStart = make([]int64, n+1)
	for v := 0; v < n; v++ {
		at := p.idxStart[v]
		for w := 0; w < workers; w++ {
			c := counts[w][v]
			counts[w][v] = at
			at += c
		}
		p.idxStart[v+1] = at
	}

	p.idxSample = make([]int32, len(p.vertOrig))
	for w := 0; w < workers; w++ {
		lo, hi := w*theta/workers, (w+1)*theta/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			next := counts[w]
			for i := lo; i < hi; i++ {
				for _, v := range p.vertOrig[p.vertStart[i]:p.vertStart[i+1]] {
					p.idxSample[next[v]] = int32(i)
					next[v]++
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
}

// Theta returns the number of stored samples.
func (p *SamplePool) Theta() int {
	if p.vertStart != nil {
		return len(p.vertStart) - 1
	}
	return len(p.vertStart32) - 1
}

// Graph returns the underlying graph.
func (p *SamplePool) Graph() *graph.Graph { return p.g }

// Source returns the source vertex the samples were drawn from.
func (p *SamplePool) Source() graph.V { return p.src }

// Encoding returns the pool's arena layout.
func (p *SamplePool) Encoding() PoolEncoding { return p.enc }

// sampleVertStart returns the vertex-arena offset of sample i, reading
// whichever width the layout kept.
func (p *SamplePool) sampleVertStart(i int) int64 {
	if p.vertStart != nil {
		return p.vertStart[i]
	}
	return int64(p.vertStart32[i])
}

// sampleEdgeStart returns the edge-arena offset of sample i.
func (p *SamplePool) sampleEdgeStart(i int) int64 {
	if p.edgeStart != nil {
		return p.edgeStart[i]
	}
	return int64(p.edgeStart32[i])
}

// view fills v with sample i's data: borrowed arena slices for flat pools;
// compressed pools borrow everything but the in-CSR, which is derived into
// v's owned scratch (see sampleView).
func (p *SamplePool) view(i int, v *sampleView) {
	if p.enc == PoolCompressed {
		p.deriveView(i, v)
		return
	}
	vs, ve := p.vertStart[i], p.vertStart[i+1]
	cs := vs + int64(i)
	es, ee := p.edgeStart[i], p.edgeStart[i+1]
	v.orig = p.vertOrig[vs:ve]
	v.outStart = p.csrStart[cs : cs+(ve-vs)+1]
	v.outTo = p.edgeTo[es:ee]
	v.inStart = p.csrInStart[cs : cs+(ve-vs)+1]
	v.inTo = p.inFrom[es:ee]
}

// SamplesContaining returns the ascending ids of the samples whose reachable
// region contains v. For flat pools the slice aliases pool storage (do not
// modify); for compressed pools it is decoded into a fresh allocation — hot
// paths use the streaming samplesContaining instead.
func (p *SamplePool) SamplesContaining(v graph.V) []int32 {
	if p.enc == PoolCompressed {
		var out []int32
		p.samplesContaining(v, func(i int32) { out = append(out, i) })
		return out
	}
	return p.idxSample[p.idxStart[v]:p.idxStart[v+1]]
}

// samplesContaining streams the ascending ids of the samples whose
// reachable region contains v into fn. The callback form serves both
// encodings: flat pools iterate the index CSR in place, compressed pools
// decode the per-vertex varint run without materializing it.
func (p *SamplePool) samplesContaining(v graph.V, fn func(int32)) {
	if p.enc == PoolCompressed {
		lo, hi := p.encIdxRange(int(v))
		b := p.encIdx[lo:hi]
		prev := int32(-1)
		for pos := 0; pos < len(b); {
			var d uint32
			d, pos = getUvarint(b, pos)
			prev += int32(d)
			fn(prev)
		}
		return
	}
	for _, i := range p.idxSample[p.idxStart[v]:p.idxStart[v+1]] {
		fn(i)
	}
}

// contribBase returns sample i's base offset into per-vertex-entry arenas.
// The incremental estimator's contribution cache mirrors the vertex arena
// layout — one slot per (sample, reached vertex) pair — and this is the
// layout accessor that stays valid for both encodings.
func (p *SamplePool) contribBase(i int) int64 {
	return p.sampleVertStart(i)
}

// totalVertEntries returns the total number of (sample, reached vertex)
// pairs across the pool — the length of the per-vertex-entry arenas that
// the contribution cache mirrors.
func (p *SamplePool) totalVertEntries() int64 {
	return p.sampleVertStart(p.Theta())
}

// MemoryBytes reports the pool's resident footprint — every backing array
// either layout retains, at capacity — for capacity planning, /stats, and
// the benchcore pool_bytes comparison between encodings.
func (p *SamplePool) MemoryBytes() int64 {
	return int64(cap(p.vertStart))*8 + int64(cap(p.edgeStart))*8 +
		int64(cap(p.vertStart32))*4 + int64(cap(p.edgeStart32))*4 +
		int64(cap(p.vertOrig))*4 + int64(cap(p.csrStart))*4 + int64(cap(p.edgeTo))*4 +
		int64(cap(p.csrInStart))*4 + int64(cap(p.inFrom))*4 +
		int64(cap(p.idxStart))*8 + int64(cap(p.idxSample))*4 +
		int64(cap(p.encIdx)) + int64(cap(p.encIdxOff))*8 + int64(cap(p.encIdxOff32))*4
}
