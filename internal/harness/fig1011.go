package harness

import (
	"fmt"
	"time"

	"github.com/imin-dev/imin/internal/core"
	"github.com/imin-dev/imin/internal/graph"
)

// Fig1011Point is one (dataset, |S|) time measurement of Figure 10 (TR) or
// 11 (WC): GreedyReplace's running time as the seed-set size grows.
type Fig1011Point struct {
	Dataset  string
	Model    graph.ProbModel
	NumSeeds int
	Runtime  time.Duration
}

// Fig1011Options configures the scalability sweep.
type Fig1011Options struct {
	// SeedCounts to sweep; the paper uses {1, 10, 100, 1000}. Counts that
	// exceed half a scaled dataset's size are skipped for that dataset.
	SeedCounts []int
	// Budget for the GR run (paper: 100). Default 20 for scaled datasets.
	Budget int
}

func (o Fig1011Options) withDefaults() Fig1011Options {
	if len(o.SeedCounts) == 0 {
		o.SeedCounts = []int{1, 10, 100, 1000}
	}
	if o.Budget == 0 {
		o.Budget = 20
	}
	return o
}

// RunFig1011 reproduces Figure 10 (model = Trivalency) or Figure 11
// (WeightedCascade): GR's running time as |S| grows from 1 to 1000. The
// paper's finding: time grows with |S| because more seeds mean wider
// cascades and larger sampled graphs, but far sublinearly — the 1000-seed
// run is nowhere near 1000× the 1-seed run.
func RunFig1011(cfg Config, model graph.ProbModel, opts Fig1011Options) ([]Fig1011Point, error) {
	cfg = cfg.WithDefaults()
	opts = opts.withDefaults()
	specs, err := cfg.selectedSpecs()
	if err != nil {
		return nil, err
	}

	var points []Fig1011Point
	for _, spec := range specs {
		for _, numSeeds := range opts.SeedCounts {
			inst, err := cfg.prepareSeeds(spec, model, numSeeds)
			if err != nil {
				continue // dataset too small for this seed count at scale
			}
			res, _, err := cfg.runNoEval(inst, core.GreedyReplace, opts.Budget)
			if err != nil {
				return nil, fmt.Errorf("harness: fig10/11 %s |S|=%d: %w", spec.Name, numSeeds, err)
			}
			points = append(points, Fig1011Point{
				Dataset: spec.Name, Model: model, NumSeeds: numSeeds, Runtime: res.Runtime,
			})
		}
	}

	figName := "Figure 10 (TR model)"
	if model == graph.WeightedCascade {
		figName = "Figure 11 (WC model)"
	}
	fmt.Fprintf(cfg.Out, "%s: GR running time vs number of seeds, b=%d\n", figName, opts.Budget)
	fmt.Fprintln(cfg.Out, "Dataset        |S|        time")
	for _, p := range points {
		fmt.Fprintf(cfg.Out, "%-12s %5d  %10s\n", p.Dataset, p.NumSeeds, p.Runtime.Round(time.Millisecond))
	}
	return points, nil
}
