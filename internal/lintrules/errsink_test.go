package lintrules_test

import (
	"testing"

	"github.com/imin-dev/imin/internal/lintkit/linttest"
	"github.com/imin-dev/imin/internal/lintrules"
)

func TestErrSinkPositive(t *testing.T) {
	linttest.Run(t, "testdata/errsink/pos", lintrules.ErrSink, storePath)
}

func TestErrSinkNegative(t *testing.T) {
	linttest.MustBeCleanDir(t, "testdata/errsink/neg", lintrules.ErrSink, storePath)
}

func TestErrSinkSuppression(t *testing.T) {
	// A justified //lint:ignore errsink silences the finding below it.
	linttest.MustBeCleanDir(t, "testdata/errsink/suppressed", lintrules.ErrSink, storePath)
}
