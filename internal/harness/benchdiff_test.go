package harness

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleReport builds a healthy in-memory benchcore report.
func sampleReport() *BenchCoreReport {
	rep := &BenchCoreReport{
		Theta: 1000, Budget: 10, Workers: 0,
		GoMaxProcs: 4, NumCPU: 4, GoVersion: "go1.24.0",
		PoolBuildMS: 120,
	}
	rep.Graph.Generator = "preferential-attachment"
	rep.Graph.N = 20000
	rep.Graph.EdgesPerVertex = 5
	rep.Graph.Edges = 100000
	rep.Graph.NumSeeds = 10
	rep.Fresh = BenchCoreMode{NsPerRound: 9e6}
	rep.Pooled = BenchCoreMode{NsPerRound: 3e6}
	rep.Incremental = BenchCoreMode{NsPerRound: 4e5}
	rep.SpeedupPooledVsFresh = 3
	rep.SpeedupIncrementalVsPooled = 7.5
	rep.SpeedupIncrementalVsFresh = 22.5
	rep.SpeedupIncremental4WVs1W = 2.5
	rep.CompressedPoolBytesRatio = 0.5
	rep.CompressedNsPerRoundRatio = 1.3
	rep.BlockersIdenticalAcrossWorkers = true
	rep.MutateRepair = []BenchCoreMutatePoint{
		{BatchEdges: 16, RepairBitIdentical: true},
		{BatchEdges: 256, RepairBitIdentical: true},
	}
	rep.Instrumentation = &BenchCoreInstrumentation{
		OverheadPct: 0.4, RoundsObserved: 100, BlockersIdentical: true, Workers: 4,
	}
	return rep
}

func clone(t *testing.T, rep *BenchCoreReport) *BenchCoreReport {
	t.Helper()
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var out BenchCoreReport
	if err := json.Unmarshal(buf, &out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// TestBenchDiffIdenticalPasses: a report diffed against itself must gate
// every class and report zero regressions.
func TestBenchDiffIdenticalPasses(t *testing.T) {
	base := sampleReport()
	res, err := RunBenchDiff(base, clone(t, base), BenchDiffOptions{})
	if err != nil {
		t.Fatalf("RunBenchDiff: %v", err)
	}
	if !res.HardwareMatch {
		t.Fatal("identical provenance reported as hardware mismatch")
	}
	if len(res.Regressions) != 0 {
		t.Fatalf("identical reports regressed: %v", res.Regressions)
	}
	gated := 0
	for _, m := range res.Metrics {
		if m.Regressed {
			t.Fatalf("metric %s regressed on identical input", m.Name)
		}
		if m.Gated {
			gated++
		}
	}
	if gated < 10 {
		t.Fatalf("only %d gated metrics, want full coverage", gated)
	}
}

// TestBenchDiffCatchesTimingRegression: +15% incremental ns/round must trip
// the 10% timing gate on matching hardware.
func TestBenchDiffCatchesTimingRegression(t *testing.T) {
	base := sampleReport()
	cand := clone(t, base)
	cand.Incremental.NsPerRound *= 1.15
	res, err := RunBenchDiff(base, cand, BenchDiffOptions{})
	if err != nil {
		t.Fatalf("RunBenchDiff: %v", err)
	}
	if len(res.Regressions) != 1 || !strings.Contains(res.Regressions[0], "incremental.ns_per_round") {
		t.Fatalf("regressions = %v, want one incremental.ns_per_round entry", res.Regressions)
	}
}

// TestBenchDiffHardwareMismatchUngatesTimings: on foreign hardware the same
// +15% timing delta must NOT fail the gate, but a collapsed speedup ratio
// still must.
func TestBenchDiffHardwareMismatchUngatesTimings(t *testing.T) {
	base := sampleReport()
	cand := clone(t, base)
	cand.NumCPU = 8
	cand.GoMaxProcs = 8
	cand.Incremental.NsPerRound *= 1.15
	res, err := RunBenchDiff(base, cand, BenchDiffOptions{})
	if err != nil {
		t.Fatalf("RunBenchDiff: %v", err)
	}
	if res.HardwareMatch {
		t.Fatal("differing NumCPU reported as hardware match")
	}
	if len(res.Regressions) != 0 {
		t.Fatalf("ungated timing delta failed the gate: %v", res.Regressions)
	}

	cand.SpeedupIncrementalVsPooled = base.SpeedupIncrementalVsPooled * 0.7
	res, err = RunBenchDiff(base, cand, BenchDiffOptions{})
	if err != nil {
		t.Fatalf("RunBenchDiff: %v", err)
	}
	if len(res.Regressions) != 1 || !strings.Contains(res.Regressions[0], "speedup_incremental_vs_pooled") {
		t.Fatalf("regressions = %v, want the ratio gate to fire despite hardware mismatch", res.Regressions)
	}
}

// TestBenchDiffDeterminismContracts: broken bit-identity booleans and a
// blown instrumentation bar must each fail regardless of tolerances.
func TestBenchDiffDeterminismContracts(t *testing.T) {
	base := sampleReport()

	cand := clone(t, base)
	cand.BlockersIdenticalAcrossWorkers = false
	res, err := RunBenchDiff(base, cand, BenchDiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 1 || !strings.Contains(res.Regressions[0], "blockers_identical_across_workers") {
		t.Fatalf("regressions = %v", res.Regressions)
	}

	cand = clone(t, base)
	cand.MutateRepair[1].RepairBitIdentical = false
	if res, err = RunBenchDiff(base, cand, BenchDiffOptions{}); err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 1 || !strings.Contains(res.Regressions[0], "repair_bit_identical") {
		t.Fatalf("regressions = %v", res.Regressions)
	}

	// The overhead gate sits at the 2% bar plus the timing tolerance
	// (the measurement is a ratio of two noisy timings): 11% passes under
	// the default 10% tolerance, 13% fails.
	cand = clone(t, base)
	cand.Instrumentation.OverheadPct = 11
	if res, err = RunBenchDiff(base, cand, BenchDiffOptions{}); err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 0 {
		t.Fatalf("overhead inside the noise allowance regressed: %v", res.Regressions)
	}
	cand.Instrumentation.OverheadPct = 13
	if res, err = RunBenchDiff(base, cand, BenchDiffOptions{}); err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 1 || !strings.Contains(res.Regressions[0], "instrumentation.overhead_pct") {
		t.Fatalf("regressions = %v", res.Regressions)
	}
}

// TestBenchDiffWorkloadMismatchErrors: reports measured on different
// workloads are incomparable — an error, not a soft pass.
func TestBenchDiffWorkloadMismatchErrors(t *testing.T) {
	base := sampleReport()
	cand := clone(t, base)
	cand.Theta = 2000
	if _, err := RunBenchDiff(base, cand, BenchDiffOptions{}); err == nil {
		t.Fatal("theta mismatch did not error")
	}
	cand = clone(t, base)
	cand.Graph.N = 10000
	if _, err := RunBenchDiff(base, cand, BenchDiffOptions{}); err == nil {
		t.Fatal("graph mismatch did not error")
	}
}

// TestLoadBenchCoreReportRoundtrip writes a report to disk and loads it.
func TestLoadBenchCoreReportRoundtrip(t *testing.T) {
	base := sampleReport()
	path := filepath.Join(t.TempDir(), "bench.json")
	buf, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBenchCoreReport(path)
	if err != nil {
		t.Fatalf("LoadBenchCoreReport: %v", err)
	}
	if got.Theta != base.Theta || got.Incremental.NsPerRound != base.Incremental.NsPerRound {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	if _, err := LoadBenchCoreReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file did not error")
	}
}

// TestAppendBenchHistory appends two entries and checks the JSONL shape.
func TestAppendBenchHistory(t *testing.T) {
	base := sampleReport()
	res, err := RunBenchDiff(base, clone(t, base), BenchDiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_history.jsonl")
	for i := 0; i < 2; i++ {
		if err := AppendBenchHistory(path, base, res); err != nil {
			t.Fatalf("AppendBenchHistory: %v", err)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var n int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e BenchHistoryEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d not valid JSON: %v", n, err)
		}
		if e.Time == "" || e.GoVersion != "go1.24.0" || !e.HardwareMatch {
			t.Fatalf("line %d malformed: %+v", n, e)
		}
		if e.IncrementalNsPerRound != 4e5 {
			t.Fatalf("line %d: incremental ns %v", n, e.IncrementalNsPerRound)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("history has %d lines, want 2", n)
	}
}
