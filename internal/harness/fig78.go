package harness

import (
	"fmt"
	"time"

	"github.com/imin-dev/imin/internal/core"
	"github.com/imin-dev/imin/internal/graph"
)

// Fig78Row is one dataset's bar group in Figure 7 (TR) or 8 (WC): the
// running time of BaselineGreedy, AdvancedGreedy and GreedyReplace at
// budget 10. A timed-out BG is reported with TimedOut set, mirroring the
// paper's ">24h" bars.
type Fig78Row struct {
	Dataset    string
	Model      graph.ProbModel
	BG, AG, GR time.Duration
	BGTimedOut bool
}

// Fig78Options configures the efficiency comparison.
type Fig78Options struct {
	// Budget for all three algorithms (paper: 10).
	Budget int
	// SkipBG drops BaselineGreedy (useful for quick sweeps of only the
	// paper's algorithms).
	SkipBG bool
}

func (o Fig78Options) withDefaults() Fig78Options {
	if o.Budget == 0 {
		o.Budget = 10
	}
	return o
}

// RunFig78 reproduces Figure 7 (model = Trivalency) or Figure 8
// (WeightedCascade): the wall-clock time of BG, AG and GR on every dataset.
// The paper's findings: AG and GR beat BG by at least 3 orders of magnitude
// where BG finishes at all; BG exceeds the time cap on the larger datasets
// (6 of 8 under TR, 5 of 8 under WC at the paper's scale); GR's time is
// close to AG's.
func RunFig78(cfg Config, model graph.ProbModel, opts Fig78Options) ([]Fig78Row, error) {
	cfg = cfg.WithDefaults()
	opts = opts.withDefaults()
	specs, err := cfg.selectedSpecs()
	if err != nil {
		return nil, err
	}

	var rows []Fig78Row
	for _, spec := range specs {
		inst, err := cfg.prepare(spec, model)
		if err != nil {
			return nil, err
		}
		row := Fig78Row{Dataset: spec.Name, Model: model}

		if !opts.SkipBG {
			res, _, err := cfg.runNoEval(inst, core.BaselineGreedy, opts.Budget)
			if err != nil {
				return nil, err
			}
			row.BG = res.Runtime
			row.BGTimedOut = res.TimedOut
		}
		res, _, err := cfg.runNoEval(inst, core.AdvancedGreedy, opts.Budget)
		if err != nil {
			return nil, err
		}
		row.AG = res.Runtime
		res, _, err = cfg.runNoEval(inst, core.GreedyReplace, opts.Budget)
		if err != nil {
			return nil, err
		}
		row.GR = res.Runtime
		rows = append(rows, row)
	}

	figName := "Figure 7 (TR model)"
	if model == graph.WeightedCascade {
		figName = "Figure 8 (WC model)"
	}
	fmt.Fprintf(cfg.Out, "%s: time cost of BG / AG / GR, b=%d\n", figName, opts.Budget)
	fmt.Fprintln(cfg.Out, "Dataset            BG           AG           GR")
	for _, r := range rows {
		bg := r.BG.Round(time.Millisecond).String()
		if r.BGTimedOut {
			bg = fmt.Sprintf(">%s (timeout)", cfg.Timeout)
		}
		fmt.Fprintf(cfg.Out, "%-12s %12s %12s %12s\n",
			r.Dataset, bg, r.AG.Round(time.Millisecond), r.GR.Round(time.Millisecond))
	}
	return rows, nil
}

// runNoEval runs one algorithm without the Monte-Carlo spread evaluation —
// the efficiency figures time only the selection itself.
func (c Config) runNoEval(in *instance, alg core.Algorithm, b int) (core.Result, float64, error) {
	opt := c.solveOptions(core.DiffusionIC, c.Seed^algSalt(alg))
	res, err := core.Solve(in.G, in.Seeds, b, alg, opt)
	return res, 0, err
}
