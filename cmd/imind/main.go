// Command imind is the influence-minimization daemon: it keeps registered
// graphs and warm solver sessions in memory and serves blocking requests
// over HTTP/JSON, so repeated solves on a hot graph skip all setup cost
// (graph load, multi-seed unification, sampler and estimator scratch).
//
// With -data-dir it is also durable: registrations and mutation batches
// are write-ahead logged (fsync policy per -fsync) and periodically
// checkpointed, so a restarted daemon recovers every graph to its exact
// pre-crash epoch instead of starting empty.
//
// Endpoints:
//
//	POST   /graphs                  register a graph (file, dataset stand-in, or generator)
//	GET    /graphs                  list registered graphs
//	GET    /graphs/{id}             one graph's info (vertices, edges, epoch, durability)
//	DELETE /graphs/{id}             unregister a graph and delete its durable state
//	POST   /graphs/{id}/solve       select blockers: {seeds, budget, algorithm, model, theta, ...}
//	POST   /graphs/{id}/solve-batch many solves against one graph, streamed as NDJSON
//	POST   /graphs/{id}/mutate      commit an NDJSON batch of topology mutations (new epoch)
//	GET    /healthz                 liveness
//	GET    /readyz                  readiness: 503 while any graph is degraded (read-only, self-healing)
//	GET    /stats                   registry size, session-cache, mutation/repair and durability counters
//	GET    /metrics                 Prometheus text exposition of the same instruments /stats reads
//	GET    /debug/traces            ring of recent solve traces (?min_duration_ms=, ?route= filters)
//	GET    /debug/bundles           diagnostic bundles the flight recorder captured (-diag-dir)
//	GET    /debug/bundles/{id}      one bundle: offending trace, trace ring, metrics, profiles
//	GET    /version                 module version, VCS revision, go version
//
// Example:
//
//	imind -addr :8080 -data ./graphs -data-dir ./state -preload Wiki-Vote,Facebook -scale 0.05
//	curl -s localhost:8080/graphs
//	curl -s -X POST localhost:8080/graphs/Wiki-Vote/solve \
//	     -d '{"num_seeds": 10, "budget": 20, "algorithm": "greedy-replace", "seed": 1}'
//
// See README.md for the full API reference and docs/OBSERVABILITY.md for
// the metric catalog, trace span glossary, and request-ID semantics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	imin "github.com/imin-dev/imin"
	"github.com/imin-dev/imin/internal/obs"
	"github.com/imin-dev/imin/internal/service"
	"github.com/imin-dev/imin/internal/store"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		dataDir       = flag.String("data", "", "directory graph files may be loaded from (empty disables file loading)")
		stateDir      = flag.String("data-dir", "", "directory for durable graph state (WAL + snapshots); empty runs in-memory only")
		fsyncMode     = flag.String("fsync", "interval", "WAL fsync policy with -data-dir: always, interval or none")
		fsyncEvery    = flag.Duration("fsync-interval", 100*time.Millisecond, "background WAL fsync period under -fsync interval")
		ckptWALMB     = flag.Int("checkpoint-wal-mb", 16, "WAL megabytes per graph that trigger a background checkpoint")
		maxConc       = flag.Int("max-concurrent", 0, "max concurrent solves (0 = GOMAXPROCS)")
		maxSessions   = flag.Int("max-sessions", 8, "warm solver sessions kept in the LRU cache")
		workers       = flag.Int("workers", 0, "parallel workers per solve (0 = all cores)")
		timeout       = flag.Duration("timeout", 0, "default per-solve timeout (0 = none; requests may set timeout_ms)")
		theta         = flag.Int("theta", 10000, "default sampled graphs per estimation round")
		evalRounds    = flag.Int("eval", 2000, "default Monte-Carlo rounds for spread reports")
		preload       = flag.String("preload", "", "comma-separated dataset stand-ins to register at startup")
		scale         = flag.Float64("scale", 0.02, "scale for -preload datasets")
		rngSeed       = flag.Uint64("rng", 1, "seed for -preload generation")
		pprofAddr     = flag.String("pprof", "", "serve net/http/pprof on this address for live profiling (empty disables)")
		mutexFraction = flag.Int("mutex-profile-fraction", 0, "runtime.SetMutexProfileFraction for the -pprof mutex profile (0 disables)")
		blockRate     = flag.Int("block-profile-rate", 0, "runtime.SetBlockProfileRate in ns for the -pprof block profile (0 disables)")
		traceRing     = flag.Int("trace-ring", 256, "solve traces kept for GET /debug/traces (negative disables tracing entirely)")
		logFormat     = flag.String("log-format", "text", "structured log output: text or json")
		logLevel      = flag.String("log-level", "info", "minimum log level: debug, info, warn or error (per-request lines log at debug)")
		shutdownTO    = flag.Duration("shutdown-timeout", 30*time.Second, "how long graceful shutdown waits for in-flight solves to drain before closing their connections")
		maxQueueWait  = flag.Duration("max-queue-wait", 5*time.Second, "max time a request may wait in an admission queue before being shed with 429 (0 = unbounded)")
		degradedMode  = flag.Bool("degraded-mode", true, "serve reads and shed writes (503) when a graph's durable log fails, self-healing in the background; false restores plain 500s")
		ckptRetries   = flag.Int("checkpoint-retries", 3, "retries for background checkpoints that fail transiently (ENOSPC etc)")
		ckptBackoff   = flag.Duration("checkpoint-retry-backoff", 250*time.Millisecond, "initial backoff between background checkpoint retries (doubles per attempt)")
		sloSolveMS    = flag.Int("slo-solve-ms", 0, "solve latency objective in ms; breaches log, count imind_slo_breaches_total and capture a diagnostic bundle (0 disables)")
		sloMutateMS   = flag.Int("slo-mutate-ms", 0, "mutate latency objective in ms (0 disables)")
		diagDir       = flag.String("diag-dir", "", "directory for SLO/degraded-mode diagnostic bundles served at GET /debug/bundles (empty disables the flight recorder)")
		diagMax       = flag.Int("diag-max-bundles", 16, "diagnostic bundles retained in -diag-dir before the oldest are deleted")
	)
	flag.Parse()

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fatal(err)
	}
	slog.SetDefault(logger)

	// One registry serves the whole process: the store's WAL/checkpoint
	// histograms and the service's instruments land on the same
	// GET /metrics scrape.
	metrics := obs.NewRegistry()

	var st *store.Store
	if *stateDir != "" {
		policy, err := store.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			fatal(err)
		}
		st, err = store.Open(*stateDir, store.Config{
			Fsync:              policy,
			FsyncInterval:      *fsyncEvery,
			CheckpointWALBytes: int64(*ckptWALMB) << 20,
			Metrics:            metrics,
			Logger:             logger,
		})
		if err != nil {
			fatal(err)
		}
		logger.Info("durable store opened", "dir", *stateDir, "fsync", string(policy))
	}

	srv := service.New(service.Config{
		MaxConcurrent:          *maxConc,
		MaxSessions:            *maxSessions,
		SolveWorkers:           *workers,
		DefaultTimeout:         *timeout,
		DefaultTheta:           *theta,
		DefaultEvalRounds:      *evalRounds,
		DataDir:                *dataDir,
		Store:                  st,
		MaxQueueWait:           *maxQueueWait,
		DisableDegraded:        !*degradedMode,
		CheckpointRetries:      *ckptRetries,
		CheckpointRetryBackoff: *ckptBackoff,
		Metrics:                metrics,
		Logger:                 logger,
		TraceRing:              *traceRing,
		SLOSolve:               time.Duration(*sloSolveMS) * time.Millisecond,
		SLOMutate:              time.Duration(*sloMutateMS) * time.Millisecond,
		DiagDir:                *diagDir,
		DiagMaxBundles:         *diagMax,
	})

	// Recovery runs before preloading: a preload name that already exists
	// durably is simply skipped (its recovered state wins — it may carry
	// mutations the generator cannot reproduce).
	if st != nil {
		recs, err := srv.Recover()
		if err != nil {
			fatal(fmt.Errorf("recovering durable graphs: %w", err))
		}
		for _, rec := range recs {
			logger.Info("recovered graph",
				"graph", rec.Name, "epoch", rec.Epoch(),
				"snapshot_epoch", rec.SnapshotEpoch,
				"replayed_batches", rec.ReplayedBatches,
				"truncated_tail", rec.TruncatedTail)
		}
	}

	if *preload != "" {
		for _, name := range strings.Split(*preload, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, ok := srv.Registry().Get(name); ok {
				logger.Info("preload skipped: already recovered", "graph", name)
				continue
			}
			g, err := imin.GenerateDataset(name, *scale, *rngSeed)
			if err != nil {
				fatal(err)
			}
			g = imin.AssignProbabilities(g, imin.Trivalency, *rngSeed^0x7112)
			if _, err := srv.Registry().Register(name, g, fmt.Sprintf("preload %s @ %g, TR", name, *scale), "TR"); err != nil {
				fatal(err)
			}
			logger.Info("preloaded graph", "graph", name, "vertices", g.N(), "edges", g.M())
		}
	}

	// The profiler gets its own listener and its own explicit mux, so the
	// profiling endpoints are never exposed on the service address and the
	// global DefaultServeMux stays empty. The mutex/block profiles are
	// useless at their zero sampling defaults — the companion flags turn
	// them on for shard-contention investigations.
	if *pprofAddr != "" {
		runtime.SetMutexProfileFraction(*mutexFraction)
		runtime.SetBlockProfileRate(*blockRate)
		pprofMux := http.NewServeMux()
		pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
		pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr,
				"mutex_profile_fraction", *mutexFraction, "block_profile_rate", *blockRate)
			if err := http.ListenAndServe(*pprofAddr, pprofMux); err != nil {
				logger.Error("pprof server failed", "error", err.Error())
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight solves.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("imind listening", "addr", *addr)

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}
	// Drain in-flight solves for up to -shutdown-timeout: Shutdown stops
	// accepting work immediately but lets running requests finish; on
	// expiry the remaining connections are closed and their solves unwind
	// through context cancellation. The durable store is flushed strictly
	// AFTER the drain completes (or its survivors are cut off): every
	// handler that acknowledged a mutation has appended it by then, so the
	// final WAL fsync and checkpoint below cover all acknowledged batches —
	// -shutdown-timeout can expire without losing any of them.
	logger.Info("shutting down", "drain_timeout", *shutdownTO)
	shutCtx, cancel := context.WithTimeout(context.Background(), *shutdownTO)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		if !errors.Is(err, context.DeadlineExceeded) {
			flushStore(logger, srv, st)
			fatal(err)
		}
		logger.Warn("shutdown timeout expired; closing remaining connections", "timeout", *shutdownTO)
		if err := httpSrv.Close(); err != nil {
			flushStore(logger, srv, st)
			fatal(err)
		}
	}
	flushStore(logger, srv, st)
}

// buildLogger constructs the process logger from -log-format/-log-level.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

// flushStore fsyncs WALs and takes final checkpoints after the HTTP drain.
// Failures are logged, not fatal'd: at this point exiting is the only
// remaining action either way, and recovery replays the WAL regardless.
func flushStore(logger *slog.Logger, srv *service.Server, st *store.Store) {
	if st == nil {
		return
	}
	if err := srv.Close(); err != nil {
		logger.Error("flushing durable store failed", "error", err.Error())
		return
	}
	logger.Info("durable store flushed (final checkpoints written)")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "imind:", err)
	os.Exit(1)
}
